// Sharded multi-process orchestration tests: deterministic shard planning,
// job-file round trip, merged-vs-unsharded byte identity across shard
// counts, crash-injection recovery (a SIGKILLed worker's retry resumes from
// its partial snapshot and the merged result is unchanged), heartbeat
// watchdog kills of hung workers, retry exhaustion, and resume-from-
// committed-shards.
//
// The suite provides its own main(): when re-exec'd with
// `run-shard-worker` as argv[1] the binary becomes a shard worker process,
// so the crash/hang drills spawn REAL processes (fork+exec of this very
// binary) with no dependence on any other build artifact's path.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "campaign/orchestrator.hpp"
#include "campaign/shard.hpp"
#include "campaign/shard_worker.hpp"
#include "campaign/status.hpp"
#include "util/json.hpp"
#include "coverage/incremental.hpp"
#include "fault/registry.hpp"
#include "snn/dense_layer.hpp"
#include "snn/spike_train.hpp"
#include "util/rng.hpp"
#include "util/subprocess.hpp"

namespace snntest::campaign {
namespace {

snn::Network make_net(uint64_t seed = 11) {
  util::Rng rng(seed);
  snn::LifParams lif;
  snn::Network net("orchestrator-test");
  auto l1 = std::make_unique<snn::DenseLayer>(8, 12, lif);
  l1->init_weights(rng, 1.3f);
  net.add_layer(std::move(l1));
  auto l2 = std::make_unique<snn::DenseLayer>(12, 4, lif);
  l2->init_weights(rng, 1.3f);
  net.add_layer(std::move(l2));
  return net;
}

tensor::Tensor busy_input(size_t T = 16, size_t n = 8, uint64_t seed = 5) {
  util::Rng rng(seed);
  return snn::random_spike_train(T, n, 0.5, rng);
}

std::vector<fault::FaultDescriptor> sampled_universe(snn::Network& net, size_t k = 40,
                                                     uint64_t seed = 17) {
  auto universe = fault::enumerate_faults(net);
  util::Rng rng(seed);
  return fault::sample_faults(universe, k, rng);
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

ShardJob make_job(snn::Network& net, size_t num_faults = 40) {
  ShardJob job;
  job.net = net;
  job.stimulus = busy_input();
  job.faults = sampled_universe(net, num_faults);
  job.engine.num_threads = 1;
  job.stimulus_name = "stim0";
  return job;
}

/// The single-process ground truth: one incremental campaign into a fresh
/// dictionary, serialized.
std::string unsharded_bytes(const ShardJob& job) {
  coverage::FaultDictionary dict = coverage::make_dictionary(
      job.net, job.faults, job.engine.detection_threshold, job.engine.detect_only);
  coverage::IncrementalConfig config;
  config.engine = job.engine;
  config.stimulus_name = job.stimulus_name;
  config.store_stimulus_data = job.store_stimulus_data;
  snn::Network net(job.net);
  const auto out = coverage::run_incremental_campaign(net, job.stimulus, job.faults, dict, config);
  EXPECT_TRUE(out.campaign.completed);
  return dict.serialize();
}

/// Worker argv builder re-execing this test binary. crash_first/hang_first
/// sabotage ONLY each shard's first attempt, so retries run clean.
OrchestratorConfig test_config(const std::string& work_dir, size_t num_shards,
                               size_t crash_first = 0, size_t hang_first = 0) {
  OrchestratorConfig config;
  config.work_dir = work_dir;
  config.num_shards = num_shards;
  config.flush_every = 1;  // commit every record: a kill loses nothing committed
  config.heartbeat_timeout_seconds = 2.0;
  config.worker_command = [crash_first, hang_first](const ShardLaunch& launch) {
    std::vector<std::string> cmd = {util::current_executable_path(),
                                    "run-shard-worker",
                                    "--job",
                                    launch.job_path,
                                    "--work-dir",
                                    launch.work_dir,
                                    "--shard",
                                    std::to_string(launch.shard_index),
                                    "--num-shards",
                                    std::to_string(launch.num_shards),
                                    "--flush-every",
                                    std::to_string(launch.flush_every)};
    if (launch.attempt == 0 && crash_first > 0) {
      cmd.push_back("--crash-after");
      cmd.push_back(std::to_string(crash_first));
    }
    if (launch.attempt == 0 && hang_first > 0) {
      cmd.push_back("--hang-after");
      cmd.push_back(std::to_string(hang_first));
    }
    return cmd;
  };
  return config;
}

TEST(PlanShards, PartitionsExactlyAndEvenly) {
  for (size_t faults : {0u, 1u, 7u, 40u, 41u, 100u}) {
    for (size_t shards : {1u, 2u, 3u, 4u, 7u}) {
      const auto plan = plan_shards(faults, shards);
      ASSERT_EQ(plan.size(), shards);
      size_t covered = 0, min_size = faults + 1, max_size = 0;
      for (size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(plan[i].begin, covered) << "shard " << i << " not contiguous";
        EXPECT_LE(plan[i].begin, plan[i].end);
        covered = plan[i].end;
        min_size = std::min(min_size, plan[i].size());
        max_size = std::max(max_size, plan[i].size());
      }
      EXPECT_EQ(covered, faults) << faults << " faults over " << shards << " shards";
      EXPECT_LE(max_size - min_size, 1u) << "unbalanced plan";
    }
  }
}

TEST(PlanShards, MoreShardsThanFaultsYieldsEmptyTails) {
  const auto plan = plan_shards(2, 4);
  EXPECT_EQ(plan[0].size(), 1u);
  EXPECT_EQ(plan[1].size(), 1u);
  EXPECT_EQ(plan[2].size(), 0u);
  EXPECT_EQ(plan[3].size(), 0u);
}

TEST(PlanShards, ZeroShardsTreatedAsOne) {
  const auto plan = plan_shards(5, 0);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].size(), 5u);
}

TEST(ShardJobFile, RoundTripIsExact) {
  auto net = make_net();
  ShardJob job = make_job(net);
  job.engine.lane_width = 4;
  job.engine.detection_threshold = 0.5;
  job.engine.detect_only = true;
  job.engine.kernel_mode = snn::KernelMode::kDense;
  job.store_stimulus_data = false;

  const std::string path = testing::TempDir() + "orchestrator_job.bin";
  save_job(job, path);
  const ShardJob loaded = load_job(path);

  EXPECT_EQ(loaded.stimulus_name, job.stimulus_name);
  EXPECT_EQ(loaded.store_stimulus_data, job.store_stimulus_data);
  ASSERT_EQ(loaded.stimulus.numel(), job.stimulus.numel());
  for (size_t i = 0; i < job.stimulus.numel(); ++i) {
    EXPECT_EQ(loaded.stimulus[i], job.stimulus[i]);
  }
  ASSERT_EQ(loaded.faults.size(), job.faults.size());
  for (size_t j = 0; j < job.faults.size(); ++j) {
    EXPECT_EQ(loaded.faults[j].to_string(), job.faults[j].to_string()) << "fault " << j;
    EXPECT_EQ(loaded.faults[j].magnitude, job.faults[j].magnitude) << "fault " << j;
  }
  EXPECT_EQ(loaded.engine.lane_width, job.engine.lane_width);
  EXPECT_EQ(loaded.engine.detection_threshold, job.engine.detection_threshold);
  EXPECT_EQ(loaded.engine.detect_only, job.engine.detect_only);
  EXPECT_EQ(loaded.engine.kernel_mode, job.engine.kernel_mode);
  // Identical campaign identity: same model + universe fingerprints.
  const auto a = coverage::make_dictionary(job.net, job.faults);
  const auto b = coverage::make_dictionary(loaded.net, loaded.faults);
  EXPECT_TRUE(a.compatible_with(b));
}

TEST(ShardJobFile, MissingFileThrows) {
  EXPECT_THROW(load_job(testing::TempDir() + "no_such_job.bin"), std::runtime_error);
}

TEST(Orchestrator, RejectsUnusableConfig) {
  auto net = make_net();
  const ShardJob job = make_job(net, 8);
  OrchestratorConfig no_dir = test_config("", 2);
  EXPECT_THROW(run_sharded_campaign(job, no_dir), std::invalid_argument);
  OrchestratorConfig no_cmd;
  no_cmd.work_dir = fresh_dir("orch_nocmd");
  EXPECT_THROW(run_sharded_campaign(job, no_cmd), std::invalid_argument);
}

TEST(Orchestrator, ShardedMatchesUnshardedByteForByte) {
  auto net = make_net();
  const ShardJob job = make_job(net);
  const std::string reference = unsharded_bytes(job);
  for (size_t shards : {1u, 2u, 4u}) {
    const auto config =
        test_config(fresh_dir("orch_identity_" + std::to_string(shards)), shards);
    const auto run = run_sharded_campaign(job, config);
    ASSERT_TRUE(run.completed) << shards << " shards";
    EXPECT_EQ(run.total_attempts(), shards);
    EXPECT_EQ(run.merge_stats.conflicts_skipped, 0u);
    EXPECT_EQ(run.merged.num_records(), job.faults.size());
    EXPECT_EQ(run.merged.serialize(), reference)
        << shards << "-shard merge is not byte-identical to the unsharded dictionary";
  }
}

TEST(Orchestrator, KilledWorkerIsRetriedWithoutLosingCommittedPairs) {
  auto net = make_net();
  const ShardJob job = make_job(net);
  const std::string reference = unsharded_bytes(job);

  // Every shard's first attempt SIGKILLs itself after 5 fresh records; with
  // flush_every=1 at least 4 of those are committed to the partial snapshot.
  auto config = test_config(fresh_dir("orch_crash"), 2, /*crash_first=*/5);
  const auto run = run_sharded_campaign(job, config);
  ASSERT_TRUE(run.completed);

  uint64_t reused = 0;
  for (const auto& shard : run.shards) {
    EXPECT_EQ(shard.attempts, 2u) << "shard " << shard.shard_index;
    EXPECT_EQ(shard.failed_attempts, 1u) << "shard " << shard.shard_index;
    EXPECT_TRUE(shard.completed);
    reused += shard.stats.pairs_reused;
  }
  // The retries resumed from the snapshots instead of restarting: committed
  // pairs were served as lookups, not re-simulated.
  EXPECT_GT(reused, 0u);
  EXPECT_EQ(run.merged.serialize(), reference)
      << "crash recovery changed the merged dictionary bytes";
}

TEST(Orchestrator, HungWorkerIsKilledByWatchdogAndRetried) {
  auto net = make_net();
  const ShardJob job = make_job(net, 24);
  const std::string reference = unsharded_bytes(job);

  // First attempts stop making progress after 2 records; the heartbeat
  // counter freezes and the 2s watchdog must SIGKILL them.
  auto config = test_config(fresh_dir("orch_hang"), 2, 0, /*hang_first=*/2);
  const auto run = run_sharded_campaign(job, config);
  ASSERT_TRUE(run.completed);

  size_t hung = 0;
  for (const auto& shard : run.shards) {
    hung += shard.hung_kills;
    EXPECT_TRUE(shard.completed);
  }
  EXPECT_GT(hung, 0u) << "watchdog never fired";
  EXPECT_EQ(run.merged.serialize(), reference);
}

TEST(Orchestrator, RetryExhaustionReportsFailure) {
  auto net = make_net();
  const ShardJob job = make_job(net, 16);
  auto config = test_config(fresh_dir("orch_exhaust"), 2);
  config.max_retries = 1;
  // Sabotage EVERY attempt (not just the first): the shard can never finish.
  config.worker_command = [](const ShardLaunch& launch) {
    return std::vector<std::string>{util::current_executable_path(),
                                    "run-shard-worker",
                                    "--job",
                                    launch.job_path,
                                    "--work-dir",
                                    launch.work_dir,
                                    "--shard",
                                    std::to_string(launch.shard_index),
                                    "--num-shards",
                                    std::to_string(launch.num_shards),
                                    "--flush-every",
                                    "1",
                                    "--crash-after",
                                    "1"};
  };
  const auto run = run_sharded_campaign(job, config);
  EXPECT_FALSE(run.completed);
  bool some_exhausted = false;
  for (const auto& shard : run.shards) {
    some_exhausted |= !shard.completed && shard.attempts == config.max_retries + 1;
  }
  EXPECT_TRUE(some_exhausted);
}

TEST(Orchestrator, ResumeSkipsAlreadyCommittedShards) {
  auto net = make_net();
  const ShardJob job = make_job(net);
  const std::string reference = unsharded_bytes(job);
  const std::string work_dir = fresh_dir("orch_resume");

  const auto first = run_sharded_campaign(job, test_config(work_dir, 4));
  ASSERT_TRUE(first.completed);

  // Same work dir, same job: every shard's final file is already committed,
  // so the rerun must launch zero workers and still merge identically.
  const auto second = run_sharded_campaign(job, test_config(work_dir, 4));
  ASSERT_TRUE(second.completed);
  EXPECT_EQ(second.total_attempts(), 0u);
  for (const auto& shard : second.shards) {
    EXPECT_TRUE(shard.reused_existing) << "shard " << shard.shard_index;
  }
  EXPECT_EQ(second.merged.serialize(), reference);
}

// --- Live status protocol (SNST snapshots + FleetView), DESIGN.md §16 ---

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  return std::string(std::istreambuf_iterator<char>(in), std::istreambuf_iterator<char>());
}

ShardStatus crafted_status(size_t shard, uint64_t total, uint64_t done) {
  ShardStatus s;
  s.shard_index = shard;
  s.num_shards = 2;
  s.heartbeat = 7;
  s.faults_total = total;
  s.faults_done = done;
  s.detected = done / 2;
  s.pairs_recorded = done;
  s.elapsed_seconds = 2.0;
  s.samples = {{1.0, done / 2, done / 4}, {2.0, done, done / 2}};
  return s;
}

TEST(ShardStatusFile, RoundTripsAllFieldsAndMetrics) {
  ShardStatus status = crafted_status(3, 100, 60);
  status.pairs_reused = 10;
  status.metrics.counters["campaign/faults_simulated"] = 60;
  status.metrics.gauges["campaign/lane_width"] = 8.0;
  obs::Registry::HistogramSnapshot h;
  h.bounds = {1.0, 2.0};
  h.buckets = {3, 4, 5};
  h.count = 12;
  h.sum = 20.5;
  status.metrics.histograms["campaign/fault_sim_seconds"] = h;

  const std::string path = testing::TempDir() + "status_roundtrip.snst";
  save_shard_status_atomic(status, path);
  const auto loaded = load_shard_status(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->shard_index, 3u);
  EXPECT_EQ(loaded->num_shards, 2u);
  EXPECT_EQ(loaded->heartbeat, 7u);
  EXPECT_EQ(loaded->faults_total, 100u);
  EXPECT_EQ(loaded->faults_done, 60u);
  EXPECT_EQ(loaded->detected, 30u);
  EXPECT_EQ(loaded->pairs_reused, 10u);
  EXPECT_EQ(loaded->pairs_recorded, 60u);
  EXPECT_FALSE(loaded->completed);
  EXPECT_DOUBLE_EQ(loaded->elapsed_seconds, 2.0);
  ASSERT_EQ(loaded->samples.size(), 2u);
  EXPECT_DOUBLE_EQ(loaded->samples[1].t_seconds, 2.0);
  EXPECT_EQ(loaded->samples[1].faults_done, 60u);
  EXPECT_EQ(loaded->metrics.counters.at("campaign/faults_simulated"), 60u);
  EXPECT_DOUBLE_EQ(loaded->metrics.gauges.at("campaign/lane_width"), 8.0);
  const auto& lh = loaded->metrics.histograms.at("campaign/fault_sim_seconds");
  EXPECT_EQ(lh.bounds, h.bounds);
  EXPECT_EQ(lh.buckets, h.buckets);
  EXPECT_EQ(lh.count, 12u);
  EXPECT_DOUBLE_EQ(lh.sum, 20.5);
  std::remove(path.c_str());
}

TEST(ShardStatusFile, TornAndCorruptSnapshotsFailSoft) {
  const std::string path = testing::TempDir() + "status_torn.snst";
  save_shard_status_atomic(crafted_status(0, 40, 20), path);
  const std::string good = read_file(path);
  ASSERT_TRUE(load_shard_status(path).has_value());

  // A torn write (reader races a non-atomic writer, or the disk filled):
  // every truncation length must read as "no snapshot", never throw.
  for (size_t keep : {size_t{0}, size_t{3}, size_t{9}, good.size() / 2, good.size() - 1}) {
    std::ofstream(path, std::ios::binary | std::ios::trunc) << good.substr(0, keep);
    EXPECT_FALSE(load_shard_status(path).has_value()) << "kept " << keep << " bytes";
  }
  // A flipped payload byte must be caught by the CRC.
  std::string corrupt = good;
  corrupt[good.size() / 2] ^= 0x40;
  std::ofstream(path, std::ios::binary | std::ios::trunc) << corrupt;
  EXPECT_FALSE(load_shard_status(path).has_value());
  // Missing file: also soft.
  std::remove(path.c_str());
  EXPECT_FALSE(load_shard_status(path).has_value());
}

TEST(FleetView, CountsCorruptSnapshotsInsteadOfFailing) {
  const std::string dir = fresh_dir("fleet_corrupt");
  std::filesystem::create_directories(dir);
  save_shard_status_atomic(crafted_status(0, 40, 20), shard_paths(dir, 0).status);
  const std::string good = read_file(shard_paths(dir, 0).status);
  std::ofstream(shard_paths(dir, 0).status, std::ios::binary | std::ios::trunc)
      << good.substr(0, good.size() / 2);

  const FleetView view = build_fleet_view(dir, 2);
  EXPECT_EQ(view.snapshots_corrupt, 1u);
  EXPECT_EQ(view.snapshots_missing, 1u);
  EXPECT_FALSE(view.completed);
  EXPECT_EQ(view.faults_done, 0u);
}

TEST(FleetView, LiveViewAggregatesProgressThroughputAndStragglers) {
  const std::string dir = fresh_dir("fleet_live");
  std::filesystem::create_directories(dir);
  // Shard 0 mid-flight: 10/20 done, 5 faults/s over its sample window.
  ShardStatus s0 = crafted_status(0, 20, 10);
  s0.samples = {{1.0, 5, 2}, {2.0, 10, 4}};
  save_shard_status_atomic(s0, shard_paths(dir, 0).status);
  // Shard 1 has not written yet (e.g. still loading the job).
  const std::vector<size_t> expected = {20, 20};

  const FleetView view = build_fleet_view(dir, 2, &expected);
  EXPECT_EQ(view.num_shards, 2u);
  EXPECT_EQ(view.faults_total, 40u);
  EXPECT_EQ(view.faults_done, 10u);
  EXPECT_EQ(view.snapshots_missing, 1u);
  EXPECT_FALSE(view.completed);
  EXPECT_DOUBLE_EQ(view.throughput, 5.0);
  // ETA from the one shard with a measurable rate: 10 remaining / 5 per s.
  EXPECT_DOUBLE_EQ(view.eta_seconds, 2.0);
  // Stragglers rank slowest-to-finish first: the silent shard (unknown =
  // infinite time-to-finish) outranks the one that is visibly moving.
  ASSERT_EQ(view.stragglers.size(), 2u);
  EXPECT_EQ(view.stragglers[0], 1u);
  EXPECT_EQ(view.stragglers[1], 0u);

  const std::string rendered = render_fleet(view);
  EXPECT_NE(rendered.find("0/2 shards committed"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("faults/s"), std::string::npos);
  EXPECT_NE(rendered.find("1 missing"), std::string::npos);

  const util::JsonValue json = util::parse_json(fleet_status_json(view));
  EXPECT_EQ(json.at("schema").str, "snntest-fleet-v1");
  EXPECT_EQ(json.at("faults_done").number, 10.0);
  EXPECT_EQ(json.at("shards").array.size(), 2u);
}

TEST(Orchestrator, ObservabilityOnIdentityUnderChaosAndMergedTraces) {
  auto net = make_net();
  const ShardJob job = make_job(net);
  const std::string reference = unsharded_bytes(job);

  // Full observability stack ON, plus first-attempt SIGKILL chaos on both
  // shards. Telemetry must not leak into the results: the merged dictionary
  // stays byte-identical to the single-process observability-off reference.
  const std::string work_dir = fresh_dir("orch_obs_identity");
  auto config = test_config(work_dir, 2, /*crash_first=*/5);
  config.collect_traces = true;
  config.status_interval_seconds = 0.0;  // refresh fleet status on every poll
  const auto run = run_sharded_campaign(job, config);
  ASSERT_TRUE(run.completed);
  EXPECT_EQ(run.merged.serialize(), reference)
      << "observability changed the merged dictionary bytes";

  // Live status artifacts exist and carry the final fleet state.
  const util::JsonValue fleet = util::parse_json(read_file(work_dir + "/fleet_status.json"));
  EXPECT_EQ(fleet.at("schema").str, "snntest-fleet-v1");
  EXPECT_TRUE(fleet.at("completed").boolean);
  EXPECT_EQ(fleet.at("faults_done").number, static_cast<double>(job.faults.size()));
  EXPECT_EQ(run.fleet.shards_completed, 2u);

  // Flight report: schema, attempt history with kill reasons, milestones.
  const util::JsonValue flight = util::parse_json(read_file(work_dir + "/flight_report.json"));
  EXPECT_EQ(flight.at("schema").str, "snntest-flight-v1");
  EXPECT_TRUE(flight.at("completed").boolean);
  ASSERT_EQ(flight.at("shards").array.size(), 2u);
  for (const auto& shard : flight.at("shards").array) {
    const auto& history = shard.at("history").array;
    ASSERT_EQ(history.size(), 2u);
    EXPECT_NE(history[0].at("outcome").str.find("crashed (signal"), std::string::npos)
        << history[0].at("outcome").str;
    EXPECT_EQ(history[1].at("outcome").str, "committed");
    EXPECT_GE(history[1].at("ended_seconds").number, history[1].at("started_seconds").number);
  }
  EXPECT_EQ(flight.at("total_attempts").number, static_cast<double>(run.total_attempts()));
  // The campaign finished, so the 100% milestone must be stamped.
  EXPECT_EQ(flight.at("milestones").at("t_1").kind, util::JsonValue::kNumber);

  // Merged trace: supervisor + both workers present, pid-mapped per input,
  // with at least one payload event from every worker pid.
  EXPECT_EQ(run.trace_merge.inputs_merged, 3u);
  EXPECT_EQ(run.trace_merge.inputs_skipped, 0u);
  const util::JsonValue trace = util::parse_json(read_file(work_dir + "/trace_merged.json"));
  std::set<double> payload_pids;
  for (const auto& ev : trace.at("traceEvents").array) {
    if (ev.at("ph").str != "M") payload_pids.insert(ev.at("pid").number);
  }
  for (double pid : {2.0, 3.0}) {
    EXPECT_TRUE(payload_pids.count(pid)) << "no events from worker pid " << pid;
  }
}

TEST(Orchestrator, FinishedCampaignIsInspectableFromItsWorkDir) {
  auto net = make_net();
  const ShardJob job = make_job(net);
  const std::string work_dir = fresh_dir("orch_postmortem");
  const auto run = run_sharded_campaign(job, test_config(work_dir, 2));
  ASSERT_TRUE(run.completed);
  EXPECT_TRUE(run.fleet.completed);
  EXPECT_EQ(run.fleet.faults_done, job.faults.size());
  ASSERT_FALSE(run.campaign_curve.empty());
  EXPECT_EQ(run.campaign_curve.back().faults_done, job.faults.size());

  // `coverage_tool status` on a finished campaign goes through exactly this
  // path: rebuild the view from the shard files, with shard-count discovery.
  const FleetView view = build_fleet_view(work_dir, 0);
  EXPECT_EQ(view.num_shards, 2u);
  EXPECT_TRUE(view.completed);
  EXPECT_EQ(view.faults_done, job.faults.size());
  const std::string rendered = render_fleet(view);
  EXPECT_NE(rendered.find("2/2 shards committed"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("campaign complete"), std::string::npos) << rendered;
}

TEST(Orchestrator, DefaultWorkerCommandCarriesTheFullContract) {
  ShardLaunch launch;
  launch.shard_index = 3;
  launch.num_shards = 8;
  launch.job_path = "/w/job.bin";
  launch.work_dir = "/w";
  launch.flush_every = 5;
  const auto cmd = default_worker_command(launch, "/bin/tool");
  const std::vector<std::string> expected = {"/bin/tool", "run-shard", "--job",     "/w/job.bin",
                                             "--work-dir", "/w",       "--shard",   "3",
                                             "--num-shards", "8",      "--flush-every", "5"};
  EXPECT_EQ(cmd, expected);
}

}  // namespace
}  // namespace snntest::campaign

/// Custom main: `test_orchestrator run-shard-worker --job ...` turns this
/// process into a shard worker (the orchestration tests spawn these);
/// anything else runs the gtest suite.
int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "run-shard-worker") {
    snntest::campaign::ShardWorkerOptions opts;
    for (int i = 2; i + 1 < argc; i += 2) {
      const std::string flag = argv[i];
      const std::string value = argv[i + 1];
      if (flag == "--job") {
        opts.job_path = value;
      } else if (flag == "--work-dir") {
        opts.work_dir = value;
      } else if (flag == "--shard") {
        opts.shard_index = std::stoul(value);
      } else if (flag == "--num-shards") {
        opts.num_shards = std::stoul(value);
      } else if (flag == "--flush-every") {
        opts.flush_every = std::stoul(value);
      } else if (flag == "--crash-after") {
        opts.crash_after = std::stoul(value);
      } else if (flag == "--hang-after") {
        opts.hang_after = std::stoul(value);
      } else {
        std::fprintf(stderr, "run-shard-worker: unknown flag %s\n", flag.c_str());
        return 2;
      }
    }
    return snntest::campaign::run_shard_worker(opts);
  }
  testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
