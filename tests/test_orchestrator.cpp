// Sharded multi-process orchestration tests: deterministic shard planning,
// job-file round trip, merged-vs-unsharded byte identity across shard
// counts, crash-injection recovery (a SIGKILLed worker's retry resumes from
// its partial snapshot and the merged result is unchanged), heartbeat
// watchdog kills of hung workers, retry exhaustion, and resume-from-
// committed-shards.
//
// The suite provides its own main(): when re-exec'd with
// `run-shard-worker` as argv[1] the binary becomes a shard worker process,
// so the crash/hang drills spawn REAL processes (fork+exec of this very
// binary) with no dependence on any other build artifact's path.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "campaign/orchestrator.hpp"
#include "campaign/shard.hpp"
#include "campaign/shard_worker.hpp"
#include "coverage/incremental.hpp"
#include "fault/registry.hpp"
#include "snn/dense_layer.hpp"
#include "snn/spike_train.hpp"
#include "util/rng.hpp"
#include "util/subprocess.hpp"

namespace snntest::campaign {
namespace {

snn::Network make_net(uint64_t seed = 11) {
  util::Rng rng(seed);
  snn::LifParams lif;
  snn::Network net("orchestrator-test");
  auto l1 = std::make_unique<snn::DenseLayer>(8, 12, lif);
  l1->init_weights(rng, 1.3f);
  net.add_layer(std::move(l1));
  auto l2 = std::make_unique<snn::DenseLayer>(12, 4, lif);
  l2->init_weights(rng, 1.3f);
  net.add_layer(std::move(l2));
  return net;
}

tensor::Tensor busy_input(size_t T = 16, size_t n = 8, uint64_t seed = 5) {
  util::Rng rng(seed);
  return snn::random_spike_train(T, n, 0.5, rng);
}

std::vector<fault::FaultDescriptor> sampled_universe(snn::Network& net, size_t k = 40,
                                                     uint64_t seed = 17) {
  auto universe = fault::enumerate_faults(net);
  util::Rng rng(seed);
  return fault::sample_faults(universe, k, rng);
}

std::string fresh_dir(const std::string& name) {
  const std::string dir = testing::TempDir() + name;
  std::filesystem::remove_all(dir);
  return dir;
}

ShardJob make_job(snn::Network& net, size_t num_faults = 40) {
  ShardJob job;
  job.net = net;
  job.stimulus = busy_input();
  job.faults = sampled_universe(net, num_faults);
  job.engine.num_threads = 1;
  job.stimulus_name = "stim0";
  return job;
}

/// The single-process ground truth: one incremental campaign into a fresh
/// dictionary, serialized.
std::string unsharded_bytes(const ShardJob& job) {
  coverage::FaultDictionary dict = coverage::make_dictionary(
      job.net, job.faults, job.engine.detection_threshold, job.engine.detect_only);
  coverage::IncrementalConfig config;
  config.engine = job.engine;
  config.stimulus_name = job.stimulus_name;
  config.store_stimulus_data = job.store_stimulus_data;
  snn::Network net(job.net);
  const auto out = coverage::run_incremental_campaign(net, job.stimulus, job.faults, dict, config);
  EXPECT_TRUE(out.campaign.completed);
  return dict.serialize();
}

/// Worker argv builder re-execing this test binary. crash_first/hang_first
/// sabotage ONLY each shard's first attempt, so retries run clean.
OrchestratorConfig test_config(const std::string& work_dir, size_t num_shards,
                               size_t crash_first = 0, size_t hang_first = 0) {
  OrchestratorConfig config;
  config.work_dir = work_dir;
  config.num_shards = num_shards;
  config.flush_every = 1;  // commit every record: a kill loses nothing committed
  config.heartbeat_timeout_seconds = 2.0;
  config.worker_command = [crash_first, hang_first](const ShardLaunch& launch) {
    std::vector<std::string> cmd = {util::current_executable_path(),
                                    "run-shard-worker",
                                    "--job",
                                    launch.job_path,
                                    "--work-dir",
                                    launch.work_dir,
                                    "--shard",
                                    std::to_string(launch.shard_index),
                                    "--num-shards",
                                    std::to_string(launch.num_shards),
                                    "--flush-every",
                                    std::to_string(launch.flush_every)};
    if (launch.attempt == 0 && crash_first > 0) {
      cmd.push_back("--crash-after");
      cmd.push_back(std::to_string(crash_first));
    }
    if (launch.attempt == 0 && hang_first > 0) {
      cmd.push_back("--hang-after");
      cmd.push_back(std::to_string(hang_first));
    }
    return cmd;
  };
  return config;
}

TEST(PlanShards, PartitionsExactlyAndEvenly) {
  for (size_t faults : {0u, 1u, 7u, 40u, 41u, 100u}) {
    for (size_t shards : {1u, 2u, 3u, 4u, 7u}) {
      const auto plan = plan_shards(faults, shards);
      ASSERT_EQ(plan.size(), shards);
      size_t covered = 0, min_size = faults + 1, max_size = 0;
      for (size_t i = 0; i < plan.size(); ++i) {
        EXPECT_EQ(plan[i].begin, covered) << "shard " << i << " not contiguous";
        EXPECT_LE(plan[i].begin, plan[i].end);
        covered = plan[i].end;
        min_size = std::min(min_size, plan[i].size());
        max_size = std::max(max_size, plan[i].size());
      }
      EXPECT_EQ(covered, faults) << faults << " faults over " << shards << " shards";
      EXPECT_LE(max_size - min_size, 1u) << "unbalanced plan";
    }
  }
}

TEST(PlanShards, MoreShardsThanFaultsYieldsEmptyTails) {
  const auto plan = plan_shards(2, 4);
  EXPECT_EQ(plan[0].size(), 1u);
  EXPECT_EQ(plan[1].size(), 1u);
  EXPECT_EQ(plan[2].size(), 0u);
  EXPECT_EQ(plan[3].size(), 0u);
}

TEST(PlanShards, ZeroShardsTreatedAsOne) {
  const auto plan = plan_shards(5, 0);
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0].size(), 5u);
}

TEST(ShardJobFile, RoundTripIsExact) {
  auto net = make_net();
  ShardJob job = make_job(net);
  job.engine.lane_width = 4;
  job.engine.detection_threshold = 0.5;
  job.engine.detect_only = true;
  job.engine.kernel_mode = snn::KernelMode::kDense;
  job.store_stimulus_data = false;

  const std::string path = testing::TempDir() + "orchestrator_job.bin";
  save_job(job, path);
  const ShardJob loaded = load_job(path);

  EXPECT_EQ(loaded.stimulus_name, job.stimulus_name);
  EXPECT_EQ(loaded.store_stimulus_data, job.store_stimulus_data);
  ASSERT_EQ(loaded.stimulus.numel(), job.stimulus.numel());
  for (size_t i = 0; i < job.stimulus.numel(); ++i) {
    EXPECT_EQ(loaded.stimulus[i], job.stimulus[i]);
  }
  ASSERT_EQ(loaded.faults.size(), job.faults.size());
  for (size_t j = 0; j < job.faults.size(); ++j) {
    EXPECT_EQ(loaded.faults[j].to_string(), job.faults[j].to_string()) << "fault " << j;
    EXPECT_EQ(loaded.faults[j].magnitude, job.faults[j].magnitude) << "fault " << j;
  }
  EXPECT_EQ(loaded.engine.lane_width, job.engine.lane_width);
  EXPECT_EQ(loaded.engine.detection_threshold, job.engine.detection_threshold);
  EXPECT_EQ(loaded.engine.detect_only, job.engine.detect_only);
  EXPECT_EQ(loaded.engine.kernel_mode, job.engine.kernel_mode);
  // Identical campaign identity: same model + universe fingerprints.
  const auto a = coverage::make_dictionary(job.net, job.faults);
  const auto b = coverage::make_dictionary(loaded.net, loaded.faults);
  EXPECT_TRUE(a.compatible_with(b));
}

TEST(ShardJobFile, MissingFileThrows) {
  EXPECT_THROW(load_job(testing::TempDir() + "no_such_job.bin"), std::runtime_error);
}

TEST(Orchestrator, RejectsUnusableConfig) {
  auto net = make_net();
  const ShardJob job = make_job(net, 8);
  OrchestratorConfig no_dir = test_config("", 2);
  EXPECT_THROW(run_sharded_campaign(job, no_dir), std::invalid_argument);
  OrchestratorConfig no_cmd;
  no_cmd.work_dir = fresh_dir("orch_nocmd");
  EXPECT_THROW(run_sharded_campaign(job, no_cmd), std::invalid_argument);
}

TEST(Orchestrator, ShardedMatchesUnshardedByteForByte) {
  auto net = make_net();
  const ShardJob job = make_job(net);
  const std::string reference = unsharded_bytes(job);
  for (size_t shards : {1u, 2u, 4u}) {
    const auto config =
        test_config(fresh_dir("orch_identity_" + std::to_string(shards)), shards);
    const auto run = run_sharded_campaign(job, config);
    ASSERT_TRUE(run.completed) << shards << " shards";
    EXPECT_EQ(run.total_attempts(), shards);
    EXPECT_EQ(run.merge_stats.conflicts_skipped, 0u);
    EXPECT_EQ(run.merged.num_records(), job.faults.size());
    EXPECT_EQ(run.merged.serialize(), reference)
        << shards << "-shard merge is not byte-identical to the unsharded dictionary";
  }
}

TEST(Orchestrator, KilledWorkerIsRetriedWithoutLosingCommittedPairs) {
  auto net = make_net();
  const ShardJob job = make_job(net);
  const std::string reference = unsharded_bytes(job);

  // Every shard's first attempt SIGKILLs itself after 5 fresh records; with
  // flush_every=1 at least 4 of those are committed to the partial snapshot.
  auto config = test_config(fresh_dir("orch_crash"), 2, /*crash_first=*/5);
  const auto run = run_sharded_campaign(job, config);
  ASSERT_TRUE(run.completed);

  uint64_t reused = 0;
  for (const auto& shard : run.shards) {
    EXPECT_EQ(shard.attempts, 2u) << "shard " << shard.shard_index;
    EXPECT_EQ(shard.failed_attempts, 1u) << "shard " << shard.shard_index;
    EXPECT_TRUE(shard.completed);
    reused += shard.stats.pairs_reused;
  }
  // The retries resumed from the snapshots instead of restarting: committed
  // pairs were served as lookups, not re-simulated.
  EXPECT_GT(reused, 0u);
  EXPECT_EQ(run.merged.serialize(), reference)
      << "crash recovery changed the merged dictionary bytes";
}

TEST(Orchestrator, HungWorkerIsKilledByWatchdogAndRetried) {
  auto net = make_net();
  const ShardJob job = make_job(net, 24);
  const std::string reference = unsharded_bytes(job);

  // First attempts stop making progress after 2 records; the heartbeat
  // counter freezes and the 2s watchdog must SIGKILL them.
  auto config = test_config(fresh_dir("orch_hang"), 2, 0, /*hang_first=*/2);
  const auto run = run_sharded_campaign(job, config);
  ASSERT_TRUE(run.completed);

  size_t hung = 0;
  for (const auto& shard : run.shards) {
    hung += shard.hung_kills;
    EXPECT_TRUE(shard.completed);
  }
  EXPECT_GT(hung, 0u) << "watchdog never fired";
  EXPECT_EQ(run.merged.serialize(), reference);
}

TEST(Orchestrator, RetryExhaustionReportsFailure) {
  auto net = make_net();
  const ShardJob job = make_job(net, 16);
  auto config = test_config(fresh_dir("orch_exhaust"), 2);
  config.max_retries = 1;
  // Sabotage EVERY attempt (not just the first): the shard can never finish.
  config.worker_command = [](const ShardLaunch& launch) {
    return std::vector<std::string>{util::current_executable_path(),
                                    "run-shard-worker",
                                    "--job",
                                    launch.job_path,
                                    "--work-dir",
                                    launch.work_dir,
                                    "--shard",
                                    std::to_string(launch.shard_index),
                                    "--num-shards",
                                    std::to_string(launch.num_shards),
                                    "--flush-every",
                                    "1",
                                    "--crash-after",
                                    "1"};
  };
  const auto run = run_sharded_campaign(job, config);
  EXPECT_FALSE(run.completed);
  bool some_exhausted = false;
  for (const auto& shard : run.shards) {
    some_exhausted |= !shard.completed && shard.attempts == config.max_retries + 1;
  }
  EXPECT_TRUE(some_exhausted);
}

TEST(Orchestrator, ResumeSkipsAlreadyCommittedShards) {
  auto net = make_net();
  const ShardJob job = make_job(net);
  const std::string reference = unsharded_bytes(job);
  const std::string work_dir = fresh_dir("orch_resume");

  const auto first = run_sharded_campaign(job, test_config(work_dir, 4));
  ASSERT_TRUE(first.completed);

  // Same work dir, same job: every shard's final file is already committed,
  // so the rerun must launch zero workers and still merge identically.
  const auto second = run_sharded_campaign(job, test_config(work_dir, 4));
  ASSERT_TRUE(second.completed);
  EXPECT_EQ(second.total_attempts(), 0u);
  for (const auto& shard : second.shards) {
    EXPECT_TRUE(shard.reused_existing) << "shard " << shard.shard_index;
  }
  EXPECT_EQ(second.merged.serialize(), reference);
}

TEST(Orchestrator, DefaultWorkerCommandCarriesTheFullContract) {
  ShardLaunch launch;
  launch.shard_index = 3;
  launch.num_shards = 8;
  launch.job_path = "/w/job.bin";
  launch.work_dir = "/w";
  launch.flush_every = 5;
  const auto cmd = default_worker_command(launch, "/bin/tool");
  const std::vector<std::string> expected = {"/bin/tool", "run-shard", "--job",     "/w/job.bin",
                                             "--work-dir", "/w",       "--shard",   "3",
                                             "--num-shards", "8",      "--flush-every", "5"};
  EXPECT_EQ(cmd, expected);
}

}  // namespace
}  // namespace snntest::campaign

/// Custom main: `test_orchestrator run-shard-worker --job ...` turns this
/// process into a shard worker (the orchestration tests spawn these);
/// anything else runs the gtest suite.
int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "run-shard-worker") {
    snntest::campaign::ShardWorkerOptions opts;
    for (int i = 2; i + 1 < argc; i += 2) {
      const std::string flag = argv[i];
      const std::string value = argv[i + 1];
      if (flag == "--job") {
        opts.job_path = value;
      } else if (flag == "--work-dir") {
        opts.work_dir = value;
      } else if (flag == "--shard") {
        opts.shard_index = std::stoul(value);
      } else if (flag == "--num-shards") {
        opts.num_shards = std::stoul(value);
      } else if (flag == "--flush-every") {
        opts.flush_every = std::stoul(value);
      } else if (flag == "--crash-after") {
        opts.crash_after = std::stoul(value);
      } else if (flag == "--hang-after") {
        opts.hang_after = std::stoul(value);
      } else {
        std::fprintf(stderr, "run-shard-worker: unknown flag %s\n", flag.c_str());
        return 2;
      }
    }
    return snntest::campaign::run_shard_worker(opts);
  }
  testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
