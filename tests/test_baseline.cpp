// Baseline generator tests ([17] adversarial, [18] greedy dataset, [20]
// random): greedy set-cover correctness, fault-simulation accounting,
// duration bookkeeping, and sanity of the adversarial attack.
#include <gtest/gtest.h>

#include "baseline/adversarial_testgen.hpp"
#include "baseline/greedy_dataset.hpp"
#include "baseline/random_testgen.hpp"
#include "data/synthetic_shd.hpp"
#include "fault/campaign.hpp"
#include "snn/dense_layer.hpp"
#include "snn/spike_train.hpp"

namespace snntest::baseline {
namespace {

snn::Network make_net(uint64_t seed = 1) {
  util::Rng rng(seed);
  snn::LifParams lif;
  snn::Network net("baseline-net");
  auto l1 = std::make_unique<snn::DenseLayer>(8, 12, lif);
  l1->init_weights(rng, 1.3f);
  net.add_layer(std::move(l1));
  auto l2 = std::make_unique<snn::DenseLayer>(12, 4, lif);
  l2->init_weights(rng, 1.3f);
  net.add_layer(std::move(l2));
  return net;
}

data::SyntheticShd make_dataset(size_t count = 40) {
  data::SyntheticShdConfig cfg;
  cfg.count = count;
  cfg.channels = 8;
  cfg.num_steps = 12;
  return data::SyntheticShd(cfg);
}

std::vector<fault::FaultDescriptor> some_faults(snn::Network& net, size_t k = 60) {
  auto universe = fault::enumerate_faults(net);
  util::Rng rng(5);
  return fault::sample_faults(universe, k, rng);
}

TEST(GreedySelect, CoversWithMarginalGain) {
  auto net = make_net();
  const auto faults = some_faults(net);
  // candidate pool: 6 random inputs
  util::Rng rng(6);
  std::vector<tensor::Tensor> pool;
  for (int i = 0; i < 6; ++i) pool.push_back(snn::random_spike_train(12, 8, 0.4, rng));
  GreedyConfig cfg;
  const auto result = greedy_select(
      net, faults, pool.size(), [&pool](size_t i) { return pool[i]; }, cfg, "test");
  EXPECT_EQ(result.candidates_evaluated, 6u);
  EXPECT_EQ(result.fault_sims, 6u * faults.size());
  EXPECT_GT(result.coverage, 0.0);
  // selection must be duplicates-free and within range
  std::set<size_t> seen(result.selected.begin(), result.selected.end());
  EXPECT_EQ(seen.size(), result.selected.size());
  for (size_t s : result.selected) EXPECT_LT(s, 6u);
  EXPECT_EQ(result.selected.size(), result.selected_inputs.size());
}

TEST(GreedySelect, CoverageMatchesIndependentCheck) {
  auto net = make_net(2);
  const auto faults = some_faults(net, 40);
  util::Rng rng(7);
  std::vector<tensor::Tensor> pool;
  for (int i = 0; i < 4; ++i) pool.push_back(snn::random_spike_train(12, 8, 0.5, rng));
  const auto result = greedy_select(
      net, faults, pool.size(), [&pool](size_t i) { return pool[i]; }, GreedyConfig{}, "test");
  if (!result.selected_inputs.empty()) {
    // replaying the assembled test must detect at least the covered count
    const auto outcome = fault::run_detection_campaign(net, result.assemble(), faults);
    const double replay =
        static_cast<double>(outcome.detected_count()) / static_cast<double>(faults.size());
    // concatenation may detect even more (state carry-over), never fewer
    // than the max single candidate... allow small tolerance for carry-over
    // effects at chunk boundaries.
    EXPECT_GE(replay, result.coverage * 0.7);
  }
}

TEST(GreedySelect, MaxSelectedRespected) {
  auto net = make_net(3);
  const auto faults = some_faults(net, 40);
  util::Rng rng(8);
  std::vector<tensor::Tensor> pool;
  for (int i = 0; i < 6; ++i) pool.push_back(snn::random_spike_train(12, 8, 0.5, rng));
  GreedyConfig cfg;
  cfg.max_selected = 1;
  const auto result = greedy_select(
      net, faults, pool.size(), [&pool](size_t i) { return pool[i]; }, cfg, "test");
  EXPECT_LE(result.selected.size(), 1u);
}

TEST(GreedySelect, EmptyPool) {
  auto net = make_net(4);
  const auto faults = some_faults(net, 20);
  const auto result = greedy_select(
      net, faults, 0, [](size_t) { return tensor::Tensor(); }, GreedyConfig{}, "test");
  EXPECT_TRUE(result.selected.empty());
  EXPECT_EQ(result.fault_sims, 0u);
}

TEST(BaselineResult, DurationAccounting) {
  BaselineResult r;
  r.selected_inputs.push_back(tensor::Tensor(tensor::Shape{10, 4}));
  r.selected_inputs.push_back(tensor::Tensor(tensor::Shape{6, 4}));
  EXPECT_EQ(r.total_steps(), 16u);
  EXPECT_DOUBLE_EQ(r.duration_in_samples(8), 2.0);
  EXPECT_EQ(r.assemble().shape(), tensor::Shape({16, 4}));
  EXPECT_THROW(r.duration_in_samples(0), std::invalid_argument);
}

TEST(GreedyDataset, SelectsFromDataset) {
  auto net = make_net(5);
  const auto faults = some_faults(net, 50);
  const auto ds = make_dataset();
  GreedyDatasetConfig cfg;
  cfg.candidate_count = 8;
  const auto result = greedy_dataset_testgen(net, faults, ds, cfg);
  EXPECT_EQ(result.method, "greedy-dataset[18]");
  EXPECT_EQ(result.candidates_evaluated, 8u);
  for (const auto& input : result.selected_inputs) {
    EXPECT_EQ(input.shape(), tensor::Shape({12, 8}));
  }
}

TEST(RandomTestgen, MatchesDatasetGeometryAndDensity) {
  auto net = make_net(6);
  const auto faults = some_faults(net, 50);
  const auto ds = make_dataset();
  RandomTestgenConfig cfg;
  cfg.candidate_count = 6;
  const auto result = random_testgen(net, faults, ds, cfg);
  EXPECT_EQ(result.method, "random[20]");
  EXPECT_EQ(result.candidates_evaluated, 6u);
}

TEST(RandomTestgen, ExplicitDensityHonored) {
  auto net = make_net(7);
  const auto faults = some_faults(net, 30);
  const auto ds = make_dataset();
  RandomTestgenConfig cfg;
  cfg.candidate_count = 2;
  cfg.density = 0.02;
  cfg.greedy.max_selected = 2;
  const auto result = random_testgen(net, faults, ds, cfg);
  EXPECT_EQ(result.candidates_evaluated, 2u);
}

TEST(Adversarial, PerturbationChangesInputButKeepsShape) {
  auto net = make_net(8);
  const auto ds = make_dataset();
  const auto sample = ds.get(0);
  AdversarialConfig cfg;
  cfg.ascent_steps = 10;
  util::Rng rng(9);
  const auto adv = adversarial_perturb(net, sample.input, cfg, rng);
  EXPECT_EQ(adv.shape(), sample.input.shape());
  for (size_t i = 0; i < adv.numel(); ++i) {
    ASSERT_TRUE(adv[i] == 0.0f || adv[i] == 1.0f);
  }
}

TEST(Adversarial, FullPipelineRuns) {
  auto net = make_net(10);
  const auto faults = some_faults(net, 40);
  const auto ds = make_dataset(12);
  AdversarialConfig cfg;
  cfg.candidate_count = 4;
  cfg.ascent_steps = 8;
  const auto result = adversarial_testgen(net, faults, ds, cfg);
  EXPECT_EQ(result.method, "adversarial[17]");
  EXPECT_EQ(result.candidates_evaluated, 4u);
  EXPECT_EQ(result.fault_sims, 4u * faults.size());
}

}  // namespace
}  // namespace snntest::baseline
