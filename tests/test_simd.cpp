// Kernel-level tests for the runtime-dispatched SIMD lane backends
// (tensor/simd.hpp).
//
// The dispatch layer's whole contract is that every backend is a bit-exact
// drop-in for the portable scalar kernels, so the core of this suite is a
// differential fuzz: for every non-scalar backend available on the host, run
// each of the six lane kernels on identical random inputs under the scalar
// table and under the SIMD table, and require float-bit equality — across
// lane widths that exercise the fixed-width templates (1, 2, 4, 8, 16), the
// generic fallback (5, 6, 11), and every vector-tail remainder (3, 13).
// Shapes are deliberately odd (7x13 matvec, strided padded conv) so row
// boundaries never align with the vector width.
//
// On hosts with no SIMD backend the differential loops are vacuous but the
// dispatch-surface tests (parse/name/availability/force) still run.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "tensor/ops.hpp"
#include "tensor/simd.hpp"
#include "util/rng.hpp"

namespace snntest::tensor::simd {
namespace {

/// Restores the pre-test backend even when an assertion bails out early.
struct BackendGuard {
  Backend prior = active_backend();
  ~BackendGuard() { force_backend(prior); }
};

std::vector<float> random_vec(util::Rng& rng, size_t n, float lo = -1.0f, float hi = 1.0f) {
  std::vector<float> v(n);
  for (auto& x : v) x = static_cast<float>(rng.uniform(lo, hi));
  return v;
}

/// Everything the six kernels produce for one (lane width, seed) input set,
/// computed under whatever backend is currently active. The inputs are a
/// pure function of (lanes, seed), so two calls with different backends are
/// comparable element-for-element.
struct KernelOutputs {
  std::vector<float> matvec_y;
  std::vector<float> gather_y;
  std::vector<float> conv_dense_syn;
  std::vector<float> conv_scatter_syn;
  std::vector<float> pool_syn;
  std::vector<float> lif_u;
  std::vector<int> lif_refrac;
  std::vector<float> lif_out;
};

KernelOutputs run_kernels(size_t lanes, uint64_t seed) {
  const LaneKernels& ops = lane_ops();
  util::Rng rng(seed);
  KernelOutputs out;

  // Dense + gather matvec on a 7x13 matrix: odd in both dimensions, with a
  // pre-filled y so the += accumulation semantics are covered too.
  const size_t rows = 7, cols = 13;
  const auto a = random_vec(rng, rows * cols);
  const auto x = random_vec(rng, cols * lanes);
  out.matvec_y = random_vec(rng, rows * lanes);
  ops.matvec_lanes(a.data(), rows, cols, x.data(), lanes, out.matvec_y.data());

  const std::vector<uint32_t> active = {0, 2, 3, 7, 12};
  out.gather_y = random_vec(rng, rows * lanes);
  ops.matvec_gather_lanes(a.data(), rows, cols, x.data(), lanes, active.data(), active.size(),
                          out.gather_y.data());

  // Strided, padded conv so the kernel's boundary clipping runs on every
  // edge; 3x3 output keeps it cheap.
  ConvLaneGeom g;
  g.in_channels = 2;
  g.in_height = 6;
  g.in_width = 5;
  g.out_channels = 3;
  g.kernel = 3;
  g.stride = 2;
  g.padding = 1;
  g.out_height = (g.in_height + 2 * g.padding - g.kernel) / g.stride + 1;
  g.out_width = (g.in_width + 2 * g.padding - g.kernel) / g.stride + 1;
  const auto w = random_vec(rng, g.out_channels * g.in_channels * g.kernel * g.kernel);
  const auto in = random_vec(rng, g.input_size() * lanes);
  out.conv_dense_syn.assign(g.output_size() * lanes, 0.0f);
  ops.conv_lanes_dense(g, w.data(), in.data(), lanes, out.conv_dense_syn.data());

  std::vector<uint32_t> pixels;
  for (uint32_t p = 0; p < g.input_size(); p += 3) pixels.push_back(p);
  std::vector<double> acc(g.output_size() * lanes, 0.0);
  out.conv_scatter_syn.assign(g.output_size() * lanes, 0.0f);
  ops.conv_lanes_scatter(g, w.data(), in.data(), lanes, pixels.data(), pixels.size(), acc.data(),
                         out.conv_scatter_syn.data());

  // Sum pool over 2x2 windows.
  const size_t pc = 3, ph = 6, pw = 6, win = 2;
  const auto pin = random_vec(rng, pc * ph * pw * lanes);
  out.pool_syn.assign(pc * (ph / win) * (pw / win) * lanes, 0.0f);
  ops.pool_lanes(pc, ph, pw, win, pin.data(), lanes, out.pool_syn.data());

  // Six sequential LIF steps with synaptic drive straddling the threshold,
  // so spikes, refractory entry, refractory countdown and plain integration
  // all occur across the lanes.
  out.lif_u = random_vec(rng, lanes, 0.0f, 0.9f);
  out.lif_refrac.assign(lanes, 0);
  for (size_t l = 0; l < lanes; l += 3) out.lif_refrac[l] = 1 + static_cast<int>(l % 3);
  out.lif_out.assign(lanes, 0.0f);
  for (int step = 0; step < 6; ++step) {
    const auto syn = random_vec(rng, lanes, -0.5f, 1.5f);
    ops.lif_lanes(out.lif_u.data(), out.lif_refrac.data(), syn.data(), out.lif_out.data(), lanes,
                  0.9f, 1.0f, 0.0f, 2);
  }
  return out;
}

/// Float-bit equality: NaN payloads and signed zeros must match too.
void expect_bits_equal(const std::vector<float>& got, const std::vector<float>& want,
                       const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    uint32_t gb = 0, wb = 0;
    std::memcpy(&gb, &got[i], sizeof(gb));
    std::memcpy(&wb, &want[i], sizeof(wb));
    ASSERT_EQ(gb, wb) << what << " diverges at element " << i << ": " << got[i] << " vs "
                      << want[i];
  }
}

TEST(SimdDispatch, BackendNamesRoundTrip) {
  for (const Backend b : {Backend::kScalar, Backend::kAvx2, Backend::kNeon}) {
    Backend parsed = Backend::kScalar;
    ASSERT_TRUE(parse_backend(backend_name(b), parsed)) << backend_name(b);
    EXPECT_EQ(parsed, b);
  }
  EXPECT_STREQ(backend_name(Backend::kScalar), "scalar");
  EXPECT_STREQ(backend_name(Backend::kAvx2), "avx2");
  EXPECT_STREQ(backend_name(Backend::kNeon), "neon");
}

TEST(SimdDispatch, ParseRejectsUnknownAndAuto) {
  Backend out = Backend::kAvx2;
  EXPECT_FALSE(parse_backend("", out));
  EXPECT_FALSE(parse_backend("auto", out));  // "auto" maps to best_available, not a backend
  EXPECT_FALSE(parse_backend("AVX2", out));  // case-sensitive, like the env var
  EXPECT_FALSE(parse_backend("sse", out));
  EXPECT_EQ(out, Backend::kAvx2);  // rejected parses leave `out` untouched
}

TEST(SimdDispatch, AvailabilityIsConsistent) {
  const auto backends = available_backends();
  ASSERT_FALSE(backends.empty());
  EXPECT_EQ(backends.front(), Backend::kScalar) << "scalar must always be available";
  for (const Backend b : backends) EXPECT_TRUE(backend_available(b));
  EXPECT_TRUE(backend_available(best_available_backend()));
  EXPECT_TRUE(backend_available(active_backend()));
}

TEST(SimdDispatch, ForceBackendSwitchesAndRestores) {
  BackendGuard guard;
  for (const Backend b : available_backends()) {
    ASSERT_TRUE(force_backend(b)) << backend_name(b);
    EXPECT_EQ(active_backend(), b);
  }
  // Forcing an unavailable backend fails and leaves the active one alone.
  for (const Backend b : {Backend::kAvx2, Backend::kNeon}) {
    if (backend_available(b)) continue;
    const Backend before = active_backend();
    EXPECT_FALSE(force_backend(b)) << backend_name(b);
    EXPECT_EQ(active_backend(), before);
  }
}

TEST(SimdKernels, EveryBackendBitIdenticalToScalar) {
  BackendGuard guard;
  const auto backends = available_backends();
  const std::vector<size_t> widths = {1, 2, 3, 4, 5, 6, 8, 11, 13, 16};
  for (const size_t lanes : widths) {
    ASSERT_LE(lanes, kMaxLanes);
    const uint64_t seed = 9000 + lanes;
    ASSERT_TRUE(force_backend(Backend::kScalar));
    const KernelOutputs ref = run_kernels(lanes, seed);
    for (const Backend b : backends) {
      if (b == Backend::kScalar) continue;
      SCOPED_TRACE(std::string("backend=") + backend_name(b) + " lanes=" +
                   std::to_string(lanes));
      ASSERT_TRUE(force_backend(b));
      const KernelOutputs got = run_kernels(lanes, seed);
      expect_bits_equal(got.matvec_y, ref.matvec_y, "matvec_lanes");
      expect_bits_equal(got.gather_y, ref.gather_y, "matvec_gather_lanes");
      expect_bits_equal(got.conv_dense_syn, ref.conv_dense_syn, "conv_lanes_dense");
      expect_bits_equal(got.conv_scatter_syn, ref.conv_scatter_syn, "conv_lanes_scatter");
      expect_bits_equal(got.pool_syn, ref.pool_syn, "pool_lanes");
      expect_bits_equal(got.lif_u, ref.lif_u, "lif_lanes u");
      expect_bits_equal(got.lif_out, ref.lif_out, "lif_lanes out");
      EXPECT_EQ(got.lif_refrac, ref.lif_refrac) << "lif_lanes refrac";
    }
  }
}

TEST(SimdKernels, PublicEntryPointsRejectBadLaneCounts) {
  const std::vector<float> a(4, 0.5f);
  std::vector<float> x(2 * kMaxLanes, 0.0f), y(2 * kMaxLanes, 0.0f);
  EXPECT_THROW(matvec_accumulate_lanes(a.data(), 2, 2, x.data(), 0, y.data()),
               std::invalid_argument);
  EXPECT_THROW(matvec_accumulate_lanes(a.data(), 2, 2, x.data(), kMaxLanes + 1, y.data()),
               std::invalid_argument);
  const uint32_t active[] = {0};
  EXPECT_THROW(
      matvec_accumulate_gather_lanes(a.data(), 2, 2, x.data(), 0, active, 1, y.data()),
      std::invalid_argument);
}

TEST(SimdKernels, ScatterWithAllPixelsActiveMatchesDense) {
  // With every input pixel active the scatter kernel visits exactly the
  // dense kernel's terms (in a different order per output, but each lane's
  // per-output accumulation remains an ordered double sum of the same
  // products — the scalar sparse/dense equivalence the engine relies on).
  BackendGuard guard;
  for (const Backend b : available_backends()) {
    ASSERT_TRUE(force_backend(b));
    SCOPED_TRACE(backend_name(b));
    const LaneKernels& ops = lane_ops();
    util::Rng rng(424242);
    ConvLaneGeom g;
    g.in_channels = 1;
    g.in_height = 4;
    g.in_width = 4;
    g.out_channels = 2;
    g.kernel = 3;
    g.stride = 1;
    g.padding = 0;
    g.out_height = 2;
    g.out_width = 2;
    const size_t lanes = 8;
    const auto w = random_vec(rng, g.out_channels * g.in_channels * g.kernel * g.kernel);
    const auto in = random_vec(rng, g.input_size() * lanes);
    std::vector<float> dense(g.output_size() * lanes, 0.0f);
    ops.conv_lanes_dense(g, w.data(), in.data(), lanes, dense.data());
    std::vector<uint32_t> all(g.input_size());
    for (uint32_t p = 0; p < all.size(); ++p) all[p] = p;
    std::vector<double> acc(g.output_size() * lanes, 0.0);
    std::vector<float> scatter(g.output_size() * lanes, 0.0f);
    ops.conv_lanes_scatter(g, w.data(), in.data(), lanes, all.data(), all.size(), acc.data(),
                           scatter.data());
    for (size_t i = 0; i < dense.size(); ++i) {
      EXPECT_NEAR(dense[i], scatter[i], 1e-5f) << "element " << i;
    }
  }
}

}  // namespace
}  // namespace snntest::tensor::simd
