// Model-zoo tests: benchmark naming, architecture geometry against
// DESIGN.md §4, dataset wiring, and the train-once-cache-everywhere flow
// (exercised with a tiny training budget in a temp cache dir).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>

#include "zoo/model_zoo.hpp"

namespace snntest::zoo {
namespace {

TEST(Zoo, BenchmarkNamesRoundTrip) {
  for (auto id : {BenchmarkId::kNmnist, BenchmarkId::kGesture, BenchmarkId::kShd}) {
    EXPECT_EQ(parse_benchmark(benchmark_name(id)), id);
  }
  EXPECT_EQ(parse_benchmark("ibm"), BenchmarkId::kGesture);
  EXPECT_THROW(parse_benchmark("bogus"), std::invalid_argument);
}

TEST(Zoo, NmnistGeometry) {
  auto net = make_network(BenchmarkId::kNmnist, 1);
  EXPECT_EQ(net.input_size(), 2u * 16u * 16u);
  EXPECT_EQ(net.output_size(), 10u);
  EXPECT_EQ(net.num_layers(), 4u);
  EXPECT_EQ(net.total_neurons(), 842u);
  EXPECT_EQ(net.total_weights(), 144u + 1152u + 16384u + 640u);
}

TEST(Zoo, GestureGeometry) {
  auto net = make_network(BenchmarkId::kGesture, 1);
  EXPECT_EQ(net.input_size(), 2u * 24u * 24u);
  EXPECT_EQ(net.output_size(), 11u);
  EXPECT_EQ(net.total_neurons(), 2731u);
  EXPECT_GT(net.total_weights(), 110000u);
}

TEST(Zoo, ShdGeometry) {
  auto net = make_network(BenchmarkId::kShd, 1);
  EXPECT_EQ(net.input_size(), 64u);
  EXPECT_EQ(net.output_size(), 20u);
  EXPECT_EQ(net.total_neurons(), 212u);
}

TEST(Zoo, DatasetsMatchNetworks) {
  for (auto id : {BenchmarkId::kNmnist, BenchmarkId::kGesture, BenchmarkId::kShd}) {
    auto net = make_network(id, 2);
    auto splits = make_datasets(id);
    EXPECT_EQ(splits.train->input_size(), net.input_size());
    EXPECT_EQ(splits.test->input_size(), net.input_size());
    EXPECT_EQ(splits.train->num_classes(), net.output_size());
    EXPECT_GT(splits.train->size(), splits.test->size());
  }
}

TEST(Zoo, FreshNetworksAreDeterministicPerSeed) {
  auto a = make_network(BenchmarkId::kShd, 7);
  auto b = make_network(BenchmarkId::kShd, 7);
  auto pa = a.params();
  auto pb = b.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t p = 0; p < pa.size(); ++p) {
    for (size_t i = 0; i < pa[p].size; ++i) ASSERT_EQ(pa[p].value[i], pb[p].value[i]);
  }
}

TEST(Zoo, TrainAndCacheRoundTrip) {
  const std::string dir = testing::TempDir() + "/zoo_cache_test";
  std::filesystem::remove_all(dir);
  ZooOptions options;
  options.cache_dir = dir;
  options.train_budget = 0.03;  // a couple of epochs on a few samples
  options.verbose = false;
  // Make sure the env override does not shadow the temp dir.
  ASSERT_EQ(std::getenv("SNNTEST_CACHE_DIR"), nullptr)
      << "unset SNNTEST_CACHE_DIR when running tests";

  auto first = load_or_train(BenchmarkId::kShd, options);
  EXPECT_FALSE(first.from_cache);
  EXPECT_TRUE(std::filesystem::exists(model_cache_path(BenchmarkId::kShd, options)));

  auto second = load_or_train(BenchmarkId::kShd, options);
  EXPECT_TRUE(second.from_cache);
  // identical weights after reload
  auto pa = first.network.params();
  auto pb = second.network.params();
  ASSERT_EQ(pa.size(), pb.size());
  for (size_t p = 0; p < pa.size(); ++p) {
    for (size_t i = 0; i < pa[p].size; ++i) ASSERT_EQ(pa[p].value[i], pb[p].value[i]);
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace snntest::zoo
