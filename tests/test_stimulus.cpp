// TestStimulus tests: Eq. (7) assembly, Eq. (8) duration accounting, the
// samples-vs-time duration conventions, density, and the bit-packed
// persistence format.
#include <gtest/gtest.h>

#include <sstream>

#include "core/test_stimulus.hpp"

namespace snntest::core {
namespace {

Tensor chunk_of(size_t T, size_t n, float value) { return Tensor(Shape{T, n}, value); }

TEST(TestStimulus, DurationFollowsEq8) {
  TestStimulus s(4);
  s.add_chunk(chunk_of(10, 4, 1.0f));
  s.add_chunk(chunk_of(6, 4, 1.0f));
  s.add_chunk(chunk_of(8, 4, 1.0f));
  // Eq. (8): 2*10 + 2*6 + 8 = 40
  EXPECT_EQ(s.total_steps(), 40u);
  EXPECT_EQ(s.chunk_steps(), 24u);
}

TEST(TestStimulus, SingleChunkHasNoSeparator) {
  TestStimulus s(2);
  s.add_chunk(chunk_of(5, 2, 1.0f));
  EXPECT_EQ(s.total_steps(), 5u);
}

TEST(TestStimulus, AssembleInterleavesSleeps) {
  TestStimulus s(2);
  s.add_chunk(chunk_of(2, 2, 1.0f));
  s.add_chunk(chunk_of(3, 2, 1.0f));
  const Tensor t = s.assemble();
  EXPECT_EQ(t.shape(), Shape({7, 2}));
  // chunk1 (t=0..1) ones, sleep (t=2..3) zeros, chunk2 (t=4..6) ones
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(2, 0), 0.0f);
  EXPECT_EQ(t.at(3, 1), 0.0f);
  EXPECT_EQ(t.at(4, 0), 1.0f);
  EXPECT_EQ(t.at(6, 1), 1.0f);
}

TEST(TestStimulus, AssembleEmptyThrows) {
  TestStimulus s(2);
  EXPECT_THROW(s.assemble(), std::logic_error);
}

TEST(TestStimulus, ChannelMismatchRejected) {
  TestStimulus s(4);
  s.add_chunk(chunk_of(2, 4, 1.0f));
  EXPECT_THROW(s.add_chunk(chunk_of(2, 5, 1.0f)), std::invalid_argument);
  EXPECT_THROW(s.add_chunk(Tensor(Shape{4})), std::invalid_argument);
}

TEST(TestStimulus, DurationConventions) {
  // 2 chunks x 10 steps, sample = 10 steps:
  //   samples metric counts chunks only -> 2.0
  //   time metric includes the separator -> 3.0
  TestStimulus s(4);
  s.add_chunk(chunk_of(10, 4, 1.0f));
  s.add_chunk(chunk_of(10, 4, 1.0f));
  EXPECT_DOUBLE_EQ(s.duration_in_samples(10), 2.0);
  EXPECT_DOUBLE_EQ(s.total_duration_in_samples(10), 3.0);
  EXPECT_THROW(s.duration_in_samples(0), std::invalid_argument);
}

TEST(TestStimulus, DensityIncludesSeparators) {
  TestStimulus s(2);
  s.add_chunk(chunk_of(2, 2, 1.0f));  // 4 ones
  s.add_chunk(chunk_of(2, 2, 0.0f));  // 0 ones
  // cells: chunks 8 + separator 4 = 12
  EXPECT_NEAR(s.spike_density(), 4.0 / 12.0, 1e-9);
}

TEST(TestStimulus, SaveLoadRoundTrip) {
  TestStimulus s(3);
  Tensor c1(Shape{4, 3});
  c1.at(0, 0) = 1.0f;
  c1.at(3, 2) = 1.0f;
  c1.at(1, 1) = 1.0f;
  s.add_chunk(c1);
  s.add_chunk(chunk_of(2, 3, 1.0f));

  std::stringstream ss;
  s.save(ss);
  const TestStimulus loaded = TestStimulus::load(ss);
  EXPECT_EQ(loaded.num_channels(), 3u);
  EXPECT_EQ(loaded.num_chunks(), 2u);
  EXPECT_EQ(loaded.total_steps(), s.total_steps());
  const Tensor a = s.assemble();
  const Tensor b = loaded.assemble();
  for (size_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(TestStimulus, LoadRejectsGarbage) {
  std::stringstream ss;
  ss << "garbage data here";
  EXPECT_THROW(TestStimulus::load(ss), std::runtime_error);
}

TEST(TestStimulus, PackedFormatIsCompact) {
  // 64 steps x 64 channels of binary data = 4096 bits = 512 bytes payload.
  TestStimulus s(64);
  s.add_chunk(chunk_of(64, 64, 1.0f));
  std::stringstream ss;
  s.save(ss);
  EXPECT_LT(ss.str().size(), 700u);  // packed + headers, far below 4096 floats
}

}  // namespace
}  // namespace snntest::core
