// Property / fuzz tests for the binary network serialization format.
//
// Round-trip: randomized architectures (dense / conv / pool / recurrent
// stacks with randomized LIF and surrogate parameters) must reload
// bit-exactly — same topology, same weights, same forward spike trains.
// Robustness: every strict prefix of a valid stream and assorted garbage
// streams must fail with std::runtime_error, never crash or yield a
// silently-wrong network.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <vector>

#include "snn/conv_layer.hpp"
#include "snn/dense_layer.hpp"
#include "snn/pool_layer.hpp"
#include "snn/recurrent_layer.hpp"
#include "snn/serialization.hpp"
#include "snn/spike_train.hpp"
#include "util/rng.hpp"

namespace snntest::snn {
namespace {

LifParams random_lif(util::Rng& rng) {
  LifParams p;
  p.threshold = static_cast<float>(rng.uniform(0.5, 2.0));
  p.leak = static_cast<float>(rng.uniform(0.5, 1.0));
  p.refractory = static_cast<int>(rng.uniform_index(3));
  return p;
}

SurrogateConfig random_surrogate(util::Rng& rng) {
  SurrogateConfig sg;
  const SurrogateKind kinds[] = {SurrogateKind::kFastSigmoid, SurrogateKind::kAtan,
                                 SurrogateKind::kRectangular};
  sg.kind = kinds[rng.uniform_index(3)];
  sg.alpha = static_cast<float>(rng.uniform(0.5, 4.0));
  return sg;
}

/// Random architecture from one of three templates: pure dense stack,
/// conv -> pool -> dense, or dense -> recurrent.
Network random_network(uint64_t seed) {
  util::Rng rng(seed);
  Network net("fuzz-net-" + std::to_string(seed));
  const size_t arch = rng.uniform_index(3);
  if (arch == 0) {
    size_t width = 4 + rng.uniform_index(8);
    const size_t depth = 2 + rng.uniform_index(3);
    for (size_t l = 0; l < depth; ++l) {
      const size_t out = 2 + rng.uniform_index(10);
      auto layer = std::make_unique<DenseLayer>(width, out, random_lif(rng));
      layer->init_weights(rng, 1.2f);
      layer->surrogate() = random_surrogate(rng);
      width = out;
      net.add_layer(std::move(layer));
    }
  } else if (arch == 1) {
    Conv2dSpec spec;
    spec.in_channels = 1 + rng.uniform_index(2);
    spec.in_height = 4 + 2 * rng.uniform_index(2);  // even, so the pool fits
    spec.in_width = spec.in_height;
    spec.out_channels = 1 + rng.uniform_index(3);
    spec.kernel = 3;
    spec.stride = 1;
    spec.padding = 1;
    auto conv = std::make_unique<ConvLayer>(spec, random_lif(rng));
    conv->init_weights(rng, 1.3f);
    conv->surrogate() = random_surrogate(rng);
    net.add_layer(std::move(conv));
    SumPoolSpec pool;
    pool.channels = spec.out_channels;
    pool.in_height = spec.out_height();
    pool.in_width = spec.out_width();
    pool.window = 2;
    auto pool_layer = std::make_unique<SumPoolLayer>(pool, random_lif(rng));
    net.add_layer(std::move(pool_layer));
    auto fc = std::make_unique<DenseLayer>(pool.output_size(), 3 + rng.uniform_index(5),
                                           random_lif(rng));
    fc->init_weights(rng, 1.2f);
    net.add_layer(std::move(fc));
  } else {
    const size_t width = 4 + rng.uniform_index(6);
    const size_t hidden = 4 + rng.uniform_index(8);
    auto l0 = std::make_unique<DenseLayer>(width, hidden, random_lif(rng));
    l0->init_weights(rng, 1.2f);
    l0->surrogate() = random_surrogate(rng);
    net.add_layer(std::move(l0));
    auto l1 = std::make_unique<RecurrentLayer>(hidden, 3 + rng.uniform_index(6),
                                               random_lif(rng));
    l1->init_weights(rng, 1.2f, 0.8f);
    l1->surrogate() = random_surrogate(rng);
    net.add_layer(std::move(l1));
  }
  return net;
}

void expect_networks_identical(Network& a, Network& b) {
  ASSERT_EQ(a.name(), b.name());
  ASSERT_EQ(a.num_layers(), b.num_layers());
  for (size_t l = 0; l < a.num_layers(); ++l) {
    Layer& la = a.layer(l);
    Layer& lb = b.layer(l);
    ASSERT_EQ(la.kind(), lb.kind()) << "layer " << l;
    EXPECT_EQ(la.name(), lb.name()) << "layer " << l;
    ASSERT_EQ(la.num_inputs(), lb.num_inputs()) << "layer " << l;
    ASSERT_EQ(la.num_neurons(), lb.num_neurons()) << "layer " << l;
    const LifParams& pa = la.lif().defaults();
    const LifParams& pb = lb.lif().defaults();
    EXPECT_EQ(pa.threshold, pb.threshold) << "layer " << l;
    EXPECT_EQ(pa.leak, pb.leak) << "layer " << l;
    EXPECT_EQ(pa.refractory, pb.refractory) << "layer " << l;
    EXPECT_EQ(pa.reset_potential, pb.reset_potential) << "layer " << l;
    EXPECT_EQ(la.surrogate().kind, lb.surrogate().kind) << "layer " << l;
    EXPECT_EQ(la.surrogate().alpha, lb.surrogate().alpha) << "layer " << l;
    const auto params_a = la.params();
    const auto params_b = lb.params();
    ASSERT_EQ(params_a.size(), params_b.size()) << "layer " << l;
    for (size_t p = 0; p < params_a.size(); ++p) {
      ASSERT_EQ(params_a[p].size, params_b[p].size) << "layer " << l << " param " << p;
      for (size_t i = 0; i < params_a[p].size; ++i) {
        ASSERT_EQ(params_a[p].value[i], params_b[p].value[i])
            << "layer " << l << " param " << p << " index " << i;
      }
    }
  }
}

TEST(SerializationFuzz, RandomNetworksRoundTripBitExactly) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    Network net = random_network(seed);
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    save_network(net, ss);
    Network loaded = load_network(ss);
    expect_networks_identical(net, loaded);

    // Functional equivalence: identical spike trains on a random stimulus.
    util::Rng rng(seed * 977 + 3);
    const auto input = random_spike_train(12, net.input_size(), 0.4, rng);
    const auto out_a = net.forward(input);
    const auto out_b = loaded.forward(input);
    ASSERT_EQ(out_a.layer_outputs.size(), out_b.layer_outputs.size());
    for (size_t l = 0; l < out_a.layer_outputs.size(); ++l) {
      const auto& ta = out_a.layer_outputs[l];
      const auto& tb = out_b.layer_outputs[l];
      ASSERT_EQ(ta.shape(), tb.shape()) << "seed " << seed << " layer " << l;
      for (size_t i = 0; i < ta.numel(); ++i) {
        ASSERT_EQ(ta[i], tb[i]) << "seed " << seed << " layer " << l;
      }
    }
  }
}

TEST(SerializationFuzz, EveryStrictPrefixThrows) {
  // The format declares its layer count up front and sizes every vector, so
  // any truncation must surface as std::runtime_error from the bounded
  // readers — never an out-of-bounds read or a silently shorter network.
  Network net = random_network(4);
  std::stringstream full(std::ios::in | std::ios::out | std::ios::binary);
  save_network(net, full);
  const std::string bytes = full.str();
  ASSERT_GT(bytes.size(), 64u);

  // All short prefixes, then a random sample of longer ones (the stream can
  // be tens of KB; checking every length would dominate the suite).
  std::vector<size_t> lengths;
  for (size_t len = 0; len < std::min<size_t>(96, bytes.size()); ++len) lengths.push_back(len);
  util::Rng rng(42);
  for (size_t k = 0; k < 200; ++k) lengths.push_back(rng.uniform_index(bytes.size()));
  for (const size_t len : lengths) {
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    ss.write(bytes.data(), static_cast<std::streamsize>(len));
    EXPECT_THROW(load_network(ss), std::runtime_error) << "prefix length " << len;
  }
}

TEST(SerializationFuzz, GarbageStreamsThrow) {
  util::Rng rng(7);
  for (size_t k = 0; k < 50; ++k) {
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    const size_t len = 1 + rng.uniform_index(256);
    for (size_t i = 0; i < len; ++i) {
      const char byte = static_cast<char>(rng.uniform_index(256));
      ss.write(&byte, 1);
    }
    EXPECT_THROW(load_network(ss), std::runtime_error) << "garbage stream " << k;
  }
  // Corrupted magic / version on an otherwise valid stream.
  Network net = random_network(2);
  std::stringstream good(std::ios::in | std::ios::out | std::ios::binary);
  save_network(net, good);
  std::string bytes = good.str();
  for (const size_t flip_at : {0u, 1u, 4u}) {  // magic bytes, version byte
    std::string mutated = bytes;
    mutated[flip_at] = static_cast<char>(mutated[flip_at] ^ 0x5A);
    std::stringstream ss(std::ios::in | std::ios::out | std::ios::binary);
    ss.write(mutated.data(), static_cast<std::streamsize>(mutated.size()));
    EXPECT_THROW(load_network(ss), std::runtime_error) << "flip at " << flip_at;
  }
}

}  // namespace
}  // namespace snntest::snn
