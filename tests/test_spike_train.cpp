// Spike-train utility tests: counts, temporal diversity (Eq. 11), activation
// fractions, concatenation (Eq. 7 plumbing), distances (Eq. 3) and rasters.
#include <gtest/gtest.h>

#include "snn/spike_train.hpp"

namespace snntest::snn {
namespace {

Tensor train_from(std::vector<std::vector<float>> rows) {
  const size_t T = rows.size();
  const size_t n = rows[0].size();
  Tensor t(Shape{T, n});
  for (size_t i = 0; i < T; ++i) {
    for (size_t j = 0; j < n; ++j) t.at(i, j) = rows[i][j];
  }
  return t;
}

TEST(SpikeCounts, PerNeuron) {
  const auto t = train_from({{1, 0}, {1, 1}, {0, 0}});
  const auto counts = spike_counts(t);
  EXPECT_EQ(counts, (std::vector<size_t>{2, 1}));
}

TEST(SpikeCounts, RejectsNonTrain) {
  Tensor t(Shape{2, 2, 2});
  EXPECT_THROW(spike_counts(t), std::invalid_argument);
}

TEST(TemporalDiversity, CountsTransitions) {
  // neuron 0: 0->1->0->1 = 3 transitions; neuron 1: constant 1 = 0
  const auto t = train_from({{0, 1}, {1, 1}, {0, 1}, {1, 1}});
  const auto td = temporal_diversity(t);
  EXPECT_EQ(td[0], 3u);
  EXPECT_EQ(td[1], 0u);
}

TEST(TemporalDiversity, SilentNeuronHasZero) {
  const auto t = train_from({{0}, {0}, {0}});
  EXPECT_EQ(temporal_diversity(t)[0], 0u);
}

TEST(ActivationFraction, ThresholdedByMinSpikes) {
  const auto t = train_from({{1, 0, 1}, {1, 0, 0}});
  EXPECT_DOUBLE_EQ(activation_fraction(t, 1), 2.0 / 3.0);
  EXPECT_DOUBLE_EQ(activation_fraction(t, 2), 1.0 / 3.0);
}

TEST(Density, TotalAndFraction) {
  const auto t = train_from({{1, 0}, {0, 1}});
  EXPECT_EQ(total_spikes(t), 2u);
  EXPECT_DOUBLE_EQ(spike_density(t), 0.5);
}

TEST(RandomTrain, MatchesRequestedDensity) {
  util::Rng rng(5);
  const auto t = random_spike_train(100, 100, 0.25, rng);
  EXPECT_NEAR(spike_density(t), 0.25, 0.02);
  for (size_t i = 0; i < t.numel(); ++i) {
    ASSERT_TRUE(t[i] == 0.0f || t[i] == 1.0f);
  }
}

TEST(ConcatTime, GluesAlongTime) {
  const auto a = train_from({{1, 0}});
  const auto b = train_from({{0, 1}, {1, 1}});
  const auto c = concat_time({a, b});
  EXPECT_EQ(c.shape(), Shape({3, 2}));
  EXPECT_EQ(c.at(0, 0), 1.0f);
  EXPECT_EQ(c.at(1, 1), 1.0f);
  EXPECT_EQ(c.at(2, 0), 1.0f);
}

TEST(ConcatTime, RejectsWidthMismatch) {
  const auto a = train_from({{1, 0}});
  Tensor b(Shape{1, 3});
  EXPECT_THROW(concat_time({a, b}), std::invalid_argument);
  EXPECT_THROW(concat_time({}), std::invalid_argument);
}

TEST(ZeroTrain, AllZeros) {
  const auto z = zero_train(4, 3);
  EXPECT_EQ(z.shape(), Shape({4, 3}));
  EXPECT_EQ(z.count_nonzero(), 0u);
}

TEST(OutputDistance, L1Criterion) {
  const auto a = train_from({{1, 0}, {0, 1}});
  const auto b = train_from({{1, 0}, {0, 1}});
  EXPECT_DOUBLE_EQ(output_distance(a, b), 0.0);  // identical -> fault NOT detected
  const auto c = train_from({{1, 1}, {0, 1}});
  EXPECT_DOUBLE_EQ(output_distance(a, c), 1.0);  // one spike differs -> detected
}

TEST(AsciiRaster, RendersSpikes) {
  const auto t = train_from({{1, 0}, {0, 1}});
  const std::string raster = ascii_raster(t);
  // rows = neurons, cols = time: neuron 0 fires at t=0, neuron 1 at t=1
  EXPECT_EQ(raster, "#.\n.#\n");
}

TEST(AsciiRaster, TruncatesLargeTrains) {
  Tensor t(Shape{200, 100}, 1.0f);
  const std::string raster = ascii_raster(t, 4, 10);
  size_t lines = 0;
  for (char c : raster) lines += c == '\n';
  EXPECT_EQ(lines, 4u);
}

}  // namespace
}  // namespace snntest::snn
