// Tests for the LIF neuron bank: integrate-and-fire semantics, leak,
// refractory period, fault modes, trace recording, and the BPTT backward —
// including TEST_P parameter sweeps over the LIF parameter grid.
#include <gtest/gtest.h>

#include <cmath>
#include <tuple>

#include "snn/neuron.hpp"

namespace snntest::snn {
namespace {

/// Drive a single neuron with a constant synaptic current and collect spikes.
std::vector<float> drive(LifBank& bank, const std::vector<float>& syn_per_step,
                         bool record = false) {
  bank.begin_run(syn_per_step.size(), record);
  std::vector<float> spikes(syn_per_step.size());
  float out = 0.0f;
  for (size_t t = 0; t < syn_per_step.size(); ++t) {
    bank.step(&syn_per_step[t], &out);
    spikes[t] = out;
  }
  return spikes;
}

TEST(LifBank, SilentWithoutInput) {
  LifBank bank(1, LifParams{});
  const auto spikes = drive(bank, std::vector<float>(10, 0.0f));
  for (float s : spikes) EXPECT_EQ(s, 0.0f);
}

TEST(LifBank, FiresWhenDriveExceedsThreshold) {
  LifParams p;
  p.threshold = 1.0f;
  LifBank bank(1, p);
  const auto spikes = drive(bank, std::vector<float>(3, 1.5f));
  EXPECT_EQ(spikes[0], 1.0f);
}

TEST(LifBank, IntegratesSubthresholdInputs) {
  LifParams p;
  p.threshold = 1.0f;
  p.leak = 1.0f;  // no decay: pure integrator
  LifBank bank(1, p);
  const auto spikes = drive(bank, std::vector<float>(5, 0.4f));
  // 0.4, 0.8, 1.2 -> fires at step 2
  EXPECT_EQ(spikes[0], 0.0f);
  EXPECT_EQ(spikes[1], 0.0f);
  EXPECT_EQ(spikes[2], 1.0f);
}

TEST(LifBank, LeakPreventsAccumulation) {
  LifParams p;
  p.threshold = 1.0f;
  p.leak = 0.5f;  // strong leak: u converges to 0.4/(1-0.5*...) < 1
  LifBank bank(1, p);
  const auto spikes = drive(bank, std::vector<float>(50, 0.4f));
  for (float s : spikes) EXPECT_EQ(s, 0.0f);
}

TEST(LifBank, RefractoryPeriodSuppressesSpikes) {
  LifParams p;
  p.threshold = 1.0f;
  p.refractory = 2;
  LifBank bank(1, p);
  const auto spikes = drive(bank, std::vector<float>(6, 2.0f));
  // fire at t=0, refractory t=1,2, fire at t=3, refractory 4,5
  EXPECT_EQ(spikes[0], 1.0f);
  EXPECT_EQ(spikes[1], 0.0f);
  EXPECT_EQ(spikes[2], 0.0f);
  EXPECT_EQ(spikes[3], 1.0f);
  EXPECT_EQ(spikes[4], 0.0f);
}

TEST(LifBank, ZeroRefractoryAllowsBackToBackSpikes) {
  LifParams p;
  p.threshold = 1.0f;
  p.refractory = 0;
  LifBank bank(1, p);
  const auto spikes = drive(bank, std::vector<float>(4, 2.0f));
  for (float s : spikes) EXPECT_EQ(s, 1.0f);
}

TEST(LifBank, ResetBetweenRuns) {
  LifParams p;
  p.threshold = 1.0f;
  p.leak = 1.0f;
  LifBank bank(1, p);
  // First run charges to 0.9
  drive(bank, std::vector<float>(1, 0.9f));
  // Fresh run must start from reset: 0.9 again does not fire
  const auto spikes = drive(bank, std::vector<float>(1, 0.9f));
  EXPECT_EQ(spikes[0], 0.0f);
}

TEST(LifBank, DeadNeuronNeverSpikes) {
  LifBank bank(1, LifParams{});
  bank.modes()[0] = NeuronMode::kDead;
  const auto spikes = drive(bank, std::vector<float>(10, 5.0f));
  for (float s : spikes) EXPECT_EQ(s, 0.0f);
}

TEST(LifBank, SaturatedNeuronAlwaysSpikes) {
  LifBank bank(1, LifParams{});
  bank.modes()[0] = NeuronMode::kSaturated;
  const auto spikes = drive(bank, std::vector<float>(10, 0.0f));
  for (float s : spikes) EXPECT_EQ(s, 1.0f);
}

TEST(LifBank, RestoreDefaultsClearsFaults) {
  LifParams p;
  LifBank bank(3, p);
  bank.modes()[1] = NeuronMode::kDead;
  bank.thresholds()[2] = 99.0f;
  bank.leaks()[0] = 0.1f;
  bank.refractories()[0] = 7;
  bank.restore_defaults();
  EXPECT_EQ(bank.modes()[1], NeuronMode::kNormal);
  EXPECT_EQ(bank.thresholds()[2], p.threshold);
  EXPECT_EQ(bank.leaks()[0], p.leak);
  EXPECT_EQ(bank.refractories()[0], p.refractory);
}

TEST(LifBank, PerNeuronThresholdIndependent) {
  LifBank bank(2, LifParams{});
  bank.thresholds()[0] = 0.5f;
  bank.thresholds()[1] = 10.0f;
  bank.begin_run(1, false);
  const float syn[2] = {1.0f, 1.0f};
  float out[2];
  bank.step(syn, out);
  EXPECT_EQ(out[0], 1.0f);
  EXPECT_EQ(out[1], 0.0f);
}

TEST(LifBank, InvalidParamsRejected) {
  LifParams bad;
  bad.threshold = -1.0f;
  EXPECT_THROW(LifBank(1, bad), std::invalid_argument);
  bad = LifParams{};
  bad.leak = 0.0f;
  EXPECT_THROW(LifBank(1, bad), std::invalid_argument);
  bad = LifParams{};
  bad.leak = 1.5f;
  EXPECT_THROW(LifBank(1, bad), std::invalid_argument);
  bad = LifParams{};
  bad.refractory = -1;
  EXPECT_THROW(LifBank(1, bad), std::invalid_argument);
}

TEST(LifBankBackward, RequiresRecordedForward) {
  LifBank bank(1, LifParams{});
  drive(bank, std::vector<float>(3, 0.0f), /*record=*/false);
  SurrogateConfig sg;
  std::vector<float> grad_spikes(3, 1.0f), grad_syn(3);
  EXPECT_THROW(bank.backward(grad_spikes.data(), 3, sg, grad_syn.data()), std::logic_error);
}

TEST(LifBankBackward, HandComputedTwoStepCase) {
  // One neuron, leak λ=0.8, threshold 1, no refractory, no spikes:
  //   u_pre[0] = syn0 = 0.3 ; u_pre[1] = 0.8*0.3 + 0.3 = 0.54
  // With dL/ds[t] = 1 and fast-sigmoid surrogate g(x) = 1/(α|x|+1)^2, α=2:
  //   gsyn[1] = g(0.54-1)            = 1/(2*0.46+1)^2
  //   gsyn[0] = g(0.3-1) + 0.8*gsyn[1]
  LifParams p;
  p.threshold = 1.0f;
  p.leak = 0.8f;
  p.refractory = 0;
  LifBank bank(1, p);
  drive(bank, std::vector<float>(2, 0.3f), /*record=*/true);
  SurrogateConfig sg;
  sg.kind = SurrogateKind::kFastSigmoid;
  sg.alpha = 2.0f;
  std::vector<float> grad_spikes = {1.0f, 1.0f};
  std::vector<float> grad_syn(2);
  bank.backward(grad_spikes.data(), 2, sg, grad_syn.data());
  const float g1 = 1.0f / std::pow(2.0f * 0.46f + 1.0f, 2.0f);
  const float g0 = 1.0f / std::pow(2.0f * 0.7f + 1.0f, 2.0f) + 0.8f * g1;
  EXPECT_NEAR(grad_syn[1], g1, 1e-5);
  EXPECT_NEAR(grad_syn[0], g0, 1e-5);
}

TEST(LifBankBackward, SpikeDetachesResetPath) {
  // A spike at t=0 (reset-to-zero, detached) cuts the u-chain: gsyn[0] must
  // contain only the direct surrogate term, not leak * gsyn[1].
  LifParams p;
  p.threshold = 1.0f;
  p.leak = 0.8f;
  p.refractory = 0;
  LifBank bank(1, p);
  drive(bank, {2.0f, 0.3f}, /*record=*/true);
  SurrogateConfig sg;
  sg.alpha = 2.0f;
  std::vector<float> grad_spikes = {0.0f, 1.0f};
  std::vector<float> grad_syn(2);
  bank.backward(grad_spikes.data(), 2, sg, grad_syn.data());
  // t=0 spiked -> (1 - s) factor kills the carry into gsyn[0].
  EXPECT_FLOAT_EQ(grad_syn[0], 0.0f);
  EXPECT_GT(grad_syn[1], 0.0f);
}

TEST(LifBankBackward, RefractoryStepCarriesNoGradient) {
  LifParams p;
  p.threshold = 1.0f;
  p.refractory = 2;
  LifBank bank(1, p);
  drive(bank, {2.0f, 2.0f, 2.0f}, /*record=*/true);  // spike at 0, refractory 1-2
  SurrogateConfig sg;
  std::vector<float> grad_spikes = {1.0f, 1.0f, 1.0f};
  std::vector<float> grad_syn(3);
  bank.backward(grad_spikes.data(), 3, sg, grad_syn.data());
  EXPECT_EQ(grad_syn[1], 0.0f);
  EXPECT_EQ(grad_syn[2], 0.0f);
  EXPECT_GT(grad_syn[0], 0.0f);
}

TEST(Surrogate, FastSigmoidPeaksAtThreshold) {
  SurrogateConfig sg;
  sg.kind = SurrogateKind::kFastSigmoid;
  sg.alpha = 2.0f;
  EXPECT_FLOAT_EQ(surrogate_derivative(sg, 0.0f), 1.0f);
  EXPECT_GT(surrogate_derivative(sg, 0.0f), surrogate_derivative(sg, 0.5f));
  EXPECT_FLOAT_EQ(surrogate_derivative(sg, 0.5f), surrogate_derivative(sg, -0.5f));
}

TEST(Surrogate, RectangularWindow) {
  SurrogateConfig sg;
  sg.kind = SurrogateKind::kRectangular;
  sg.alpha = 2.0f;
  EXPECT_FLOAT_EQ(surrogate_derivative(sg, 0.0f), 1.0f);
  EXPECT_FLOAT_EQ(surrogate_derivative(sg, 0.6f), 0.0f);
}

TEST(Surrogate, AtanSymmetric) {
  SurrogateConfig sg;
  sg.kind = SurrogateKind::kAtan;
  sg.alpha = 2.0f;
  EXPECT_FLOAT_EQ(surrogate_derivative(sg, 0.3f), surrogate_derivative(sg, -0.3f));
  EXPECT_GT(surrogate_derivative(sg, 0.0f), 0.0f);
}

// ---------- property sweeps over the LIF parameter grid ----------

class LifParamSweep : public testing::TestWithParam<std::tuple<float, float, int>> {};

// Helper outside the fixture so the TEST_P body stays small.
void util_drive_and_check(LifBank& bank) {
  const size_t T = 24;
  bank.begin_run(T, true);
  std::vector<float> syn(bank.size());
  std::vector<float> out(bank.size());
  std::vector<std::vector<float>> history;
  uint64_t state = 99;
  for (size_t t = 0; t < T; ++t) {
    for (auto& s : syn) {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      s = static_cast<float>((state >> 40) % 200) / 100.0f;  // [0, 2)
    }
    bank.step(syn.data(), out.data());
    history.push_back(out);
    for (float v : out) EXPECT_TRUE(v == 0.0f || v == 1.0f);
  }
  // Refractory property: after any spike, the next `refractory` steps are 0.
  const int R = bank.refractories()[0];
  for (size_t i = 0; i < bank.size(); ++i) {
    for (size_t t = 0; t < T; ++t) {
      if (history[t][i] == 1.0f) {
        for (int k = 1; k <= R && t + k < T; ++k) {
          EXPECT_EQ(history[t + k][i], 0.0f) << "refractory violated at t=" << t << "+" << k;
        }
      }
    }
  }
}

TEST_P(LifParamSweep, SpikesAreBinaryAndRefractoryHolds) {
  const auto [threshold, leak, refractory] = GetParam();
  LifParams p;
  p.threshold = threshold;
  p.leak = leak;
  p.refractory = refractory;
  LifBank bank(4, p);
  util_drive_and_check(bank);
}

INSTANTIATE_TEST_SUITE_P(
    ParamGrid, LifParamSweep,
    testing::Combine(testing::Values(0.5f, 1.0f, 2.0f),    // threshold
                     testing::Values(0.5f, 0.9f, 1.0f),    // leak
                     testing::Values(0, 1, 3)),            // refractory
    [](const testing::TestParamInfo<LifParamSweep::ParamType>& info) {
      return "th" + std::to_string(static_cast<int>(std::get<0>(info.param) * 10)) + "_lk" +
             std::to_string(static_cast<int>(std::get<1>(info.param) * 10)) + "_rf" +
             std::to_string(std::get<2>(info.param));
    });

}  // namespace
}  // namespace snntest::snn
