// Synthetic dataset tests: determinism, class balance, shapes, binary
// values, sane firing densities, DVS encoder semantics, splits — plus
// TEST_P sweeps over all three generators through the common interface.
#include <gtest/gtest.h>

#include <functional>
#include <memory>

#include "data/dvs_encoder.hpp"
#include "data/synthetic_gesture.hpp"
#include "data/synthetic_nmnist.hpp"
#include "data/synthetic_shd.hpp"
#include "snn/spike_train.hpp"

namespace snntest::data {
namespace {

TEST(DvsEncoder, EmitsOnOffEventsAtTransitions) {
  DvsConfig cfg;
  cfg.height = 2;
  cfg.width = 2;
  cfg.num_steps = 3;
  cfg.event_dropout = 0.0;
  cfg.noise_density = 0.0;
  // pixel 0 turns on at t=1 and off at t=2
  auto frame = [](size_t t, std::vector<uint8_t>& mask) {
    mask.assign(4, 0);
    if (t == 1) mask[0] = 1;
  };
  util::Rng rng(1);
  const auto events = dvs_encode(cfg, frame, rng);
  EXPECT_EQ(events.shape(), tensor::Shape({3, 8}));
  // t=0: no change (initial frame) -> silence
  EXPECT_EQ(events.at(0, 0), 0.0f);
  // t=1: ON event on channel 0 (polarity 0)
  EXPECT_EQ(events.at(1, 0), 1.0f);
  EXPECT_EQ(events.at(1, 4), 0.0f);
  // t=2: OFF event on polarity-1 channel
  EXPECT_EQ(events.at(2, 0), 0.0f);
  EXPECT_EQ(events.at(2, 4), 1.0f);
}

TEST(DvsEncoder, DropoutSuppressesEvents) {
  DvsConfig cfg;
  cfg.height = 4;
  cfg.width = 4;
  cfg.num_steps = 20;
  cfg.event_dropout = 1.0;  // all real events dropped
  cfg.noise_density = 0.0;
  size_t flip = 0;
  auto frame = [&flip](size_t t, std::vector<uint8_t>& mask) {
    mask.assign(16, t % 2 ? 1 : 0);
    ++flip;
  };
  util::Rng rng(2);
  const auto events = dvs_encode(cfg, frame, rng);
  EXPECT_EQ(events.count_nonzero(), 0u);
}

TEST(SevenSegment, DigitsAreDistinct) {
  std::vector<std::vector<uint8_t>> glyphs(10);
  for (size_t d = 0; d < 10; ++d) {
    render_seven_segment(d, 0, 0, 16, 16, glyphs[d]);
    size_t on = 0;
    for (uint8_t v : glyphs[d]) on += v;
    EXPECT_GT(on, 10u) << "digit " << d << " too sparse";
  }
  for (size_t a = 0; a < 10; ++a) {
    for (size_t b = a + 1; b < 10; ++b) {
      EXPECT_NE(glyphs[a], glyphs[b]) << a << " vs " << b;
    }
  }
}

TEST(SevenSegment, OffsetMovesGlyph) {
  std::vector<uint8_t> base, moved;
  render_seven_segment(8, 0, 0, 16, 16, base);
  render_seven_segment(8, 2, 1, 16, 16, moved);
  EXPECT_NE(base, moved);
}

TEST(SevenSegment, RejectsBadDigit) {
  std::vector<uint8_t> mask;
  EXPECT_THROW(render_seven_segment(10, 0, 0, 16, 16, mask), std::invalid_argument);
}

TEST(DatasetSlice, RangesAndNames) {
  auto base = std::make_shared<SyntheticShd>(SyntheticShdConfig{});
  auto splits = split(base, 700, 300);
  EXPECT_EQ(splits.train->size(), 700u);
  EXPECT_EQ(splits.test->size(), 300u);
  // test slice starts where train ends
  const auto direct = base->get(700);
  const auto sliced = splits.test->get(0);
  EXPECT_EQ(direct.label, sliced.label);
  EXPECT_THROW(splits.test->get(300), std::out_of_range);
  EXPECT_THROW(split(base, 900, 200), std::out_of_range);
}

// ---------- generator-agnostic property sweeps ----------

struct GeneratorCase {
  std::string name;
  std::function<std::shared_ptr<Dataset>()> make;
  double min_density;
  double max_density;
};

class DatasetSweep : public testing::TestWithParam<GeneratorCase> {};

TEST_P(DatasetSweep, DeterministicAcrossInstances) {
  auto a = GetParam().make();
  auto b = GetParam().make();
  for (size_t i : {size_t{0}, size_t{7}, size_t{31}}) {
    const auto sa = a->get(i);
    const auto sb = b->get(i);
    EXPECT_EQ(sa.label, sb.label);
    ASSERT_EQ(sa.input.numel(), sb.input.numel());
    for (size_t j = 0; j < sa.input.numel(); ++j) {
      ASSERT_EQ(sa.input[j], sb.input[j]) << "sample " << i << " diverges at " << j;
    }
  }
}

TEST_P(DatasetSweep, ShapesMatchMetadata) {
  auto ds = GetParam().make();
  const auto s = ds->get(0);
  EXPECT_EQ(s.input.shape(), tensor::Shape({ds->num_steps(), ds->input_size()}));
}

TEST_P(DatasetSweep, ValuesAreBinary) {
  auto ds = GetParam().make();
  const auto s = ds->get(3);
  for (size_t i = 0; i < s.input.numel(); ++i) {
    ASSERT_TRUE(s.input[i] == 0.0f || s.input[i] == 1.0f);
  }
}

TEST_P(DatasetSweep, ClassesAreBalanced) {
  auto ds = GetParam().make();
  const auto hist = label_histogram(*ds);
  EXPECT_EQ(hist.size(), ds->num_classes());
  const size_t expected = ds->size() / ds->num_classes();
  for (size_t c = 0; c < hist.size(); ++c) {
    EXPECT_NEAR(static_cast<double>(hist[c]), static_cast<double>(expected),
                static_cast<double>(expected) * 0.2 + 1.0);
  }
}

TEST_P(DatasetSweep, FiringDensityInRange) {
  auto ds = GetParam().make();
  double total = 0.0;
  const size_t probe = 12;
  for (size_t i = 0; i < probe; ++i) total += snn::spike_density(ds->get(i).input);
  const double mean = total / probe;
  EXPECT_GE(mean, GetParam().min_density);
  EXPECT_LE(mean, GetParam().max_density);
}

TEST_P(DatasetSweep, SamplesOfSameClassDiffer) {
  auto ds = GetParam().make();
  const size_t classes = ds->num_classes();
  const auto a = ds->get(0);
  const auto b = ds->get(classes);  // same label (index mod classes), new jitter
  ASSERT_EQ(a.label, b.label);
  double diff = 0.0;
  for (size_t i = 0; i < a.input.numel(); ++i) diff += std::abs(a.input[i] - b.input[i]);
  EXPECT_GT(diff, 0.0);
}

TEST_P(DatasetSweep, OutOfRangeIndexThrows) {
  auto ds = GetParam().make();
  EXPECT_THROW(ds->get(ds->size()), std::out_of_range);
}

INSTANTIATE_TEST_SUITE_P(
    AllGenerators, DatasetSweep,
    testing::Values(
        GeneratorCase{"nmnist",
                      [] {
                        SyntheticNmnistConfig cfg;
                        cfg.count = 120;
                        return std::make_shared<SyntheticNmnist>(cfg);
                      },
                      0.002, 0.2},
        GeneratorCase{"gesture",
                      [] {
                        SyntheticGestureConfig cfg;
                        cfg.count = 110;
                        return std::make_shared<SyntheticGesture>(cfg);
                      },
                      0.001, 0.2},
        GeneratorCase{"shd",
                      [] {
                        SyntheticShdConfig cfg;
                        cfg.count = 120;
                        return std::make_shared<SyntheticShd>(cfg);
                      },
                      0.01, 0.3}),
    [](const testing::TestParamInfo<GeneratorCase>& info) { return info.param.name; });

}  // namespace
}  // namespace snntest::data
