// Integration tests for the full test-generation algorithm (Sec. IV):
// stage optimization improves the loss, the generator activates neurons and
// beats random stimuli of equal duration on fault coverage, duration growth
// kicks in for hard-to-activate neurons, determinism, ablation switches,
// and the T_in,min search.
#include <gtest/gtest.h>

#include <cstring>

#include "core/input_optimizer.hpp"
#include "core/naive_fc_optimizer.hpp"
#include "core/test_generator.hpp"
#include "fault/campaign.hpp"
#include "fault/coverage.hpp"
#include "snn/dense_layer.hpp"
#include "snn/spike_train.hpp"

namespace snntest::core {
namespace {

snn::Network make_net(size_t in = 10, size_t hidden = 16, size_t out = 5, uint64_t seed = 1,
                      float gain = 1.2f) {
  util::Rng rng(seed);
  snn::LifParams lif;
  snn::Network net("testgen-net");
  auto l1 = std::make_unique<snn::DenseLayer>(in, hidden, lif);
  l1->init_weights(rng, gain);
  net.add_layer(std::move(l1));
  auto l2 = std::make_unique<snn::DenseLayer>(hidden, out, lif);
  l2->init_weights(rng, gain);
  net.add_layer(std::move(l2));
  return net;
}

TestGenConfig fast_config() {
  TestGenConfig cfg;
  cfg.steps_stage1 = 60;
  cfg.max_iterations = 6;
  cfg.t_limit_seconds = 30.0;
  cfg.eval_every = 2;
  cfg.t_in_start = 4;
  cfg.t_in_max = 24;
  return cfg;
}

TEST(InputOptimizer, ReducesLoss) {
  auto net = make_net();
  util::Rng rng(2);
  GumbelSoftmaxInput input(12, net.input_size(), rng, -2.0f);  // start sparse
  StageConfig stage;
  stage.num_steps = 80;
  stage.eval_every = 1;
  CompositeLoss loss;
  loss.add(std::make_shared<NeuronActivationLoss>());
  InputOptimizer optimizer(net, input, stage);
  const auto outcome = optimizer.run(loss);
  ASSERT_FALSE(outcome.loss_trace.empty());
  EXPECT_LT(outcome.best_loss, outcome.loss_trace.front());
  EXPECT_FALSE(outcome.best_input.empty());
}

TEST(InputOptimizer, AcceptPredicateFiltersCandidates) {
  auto net = make_net();
  util::Rng rng(3);
  GumbelSoftmaxInput input(10, net.input_size(), rng);
  StageConfig stage;
  stage.num_steps = 30;
  CompositeLoss loss;
  loss.add(std::make_shared<SparsityLoss>());
  InputOptimizer optimizer(net, input, stage);
  // impossible acceptance: nothing may become "best"
  const auto outcome =
      optimizer.run(loss, [](const snn::ForwardResult&) { return false; });
  EXPECT_TRUE(outcome.best_input.empty());
}

TEST(TestGenerator, ActivatesMostNeurons) {
  auto net = make_net();
  TestGenerator generator(net, fast_config());
  const auto report = generator.generate();
  EXPECT_GT(report.stimulus.num_chunks(), 0u);
  EXPECT_EQ(report.total_neurons, 21u);
  EXPECT_GT(report.activated_fraction(), 0.8);
  EXPECT_GT(report.runtime_seconds, 0.0);
  EXPECT_EQ(report.iterations.size(), report.stimulus.num_chunks());
}

TEST(TestGenerator, BeatsDensityMatchedRandomOnWeakNet) {
  // The paper's Fig. 8 effect: optimization places spikes to activate
  // neurons that unstructured input misses. On a weakly-weighted network a
  // random stimulus with the *same duration and spike budget* activates
  // fewer neurons and covers fewer faults.
  auto net = make_net(10, 16, 5, 7, /*gain=*/0.7f);
  auto cfg = fast_config();
  cfg.restarts = 3;  // multi-restart picks the best of three Gumbel streams
  TestGenerator generator(net, cfg);
  const auto report = generator.generate();
  const auto optimized = report.stimulus.assemble();

  auto faults = fault::enumerate_faults(net);
  const auto opt_outcome = fault::run_detection_campaign(net, optimized, faults);
  const double opt_fc = fault::fault_coverage(opt_outcome.results);

  // density-matched random stimulus (same shape, same expected spike count)
  util::Rng rng(8);
  const double density = snn::spike_density(optimized);
  const auto random_input = snn::random_spike_train(optimized.shape().dim(0),
                                                    optimized.shape().dim(1), density, rng);
  const auto rnd_outcome = fault::run_detection_campaign(net, random_input, faults);
  const double rnd_fc = fault::fault_coverage(rnd_outcome.results);

  const double opt_act = snn::activation_fraction(net.forward(optimized).layer_outputs[0]);
  const double rnd_act = snn::activation_fraction(net.forward(random_input).layer_outputs[0]);
  EXPECT_GE(opt_act, rnd_act);
  EXPECT_GE(opt_fc + 0.02, rnd_fc);  // small tolerance: benign-fault noise
  // weak weights cap the reachable coverage; the point is the comparison,
  // the absolute bar only guards against total collapse
  EXPECT_GT(opt_fc, 0.2);
}

TEST(TestGenerator, NearPerfectCriticalNeuronCoverageOnSmallNet) {
  auto net = make_net(8, 10, 4, 9);
  auto cfg = fast_config();
  cfg.restarts = 3;  // multi-restart picks the best of three Gumbel streams
  TestGenerator generator(net, cfg);
  const auto report = generator.generate();
  // On a fully activated small net, every dead/saturated neuron fault on an
  // *activated* neuron must be detected.
  if (report.activated_fraction() == 1.0) {
    fault::FaultUniverseConfig cfg;
    cfg.synapse_dead = false;
    cfg.synapse_saturated_positive = false;
    cfg.synapse_saturated_negative = false;
    auto neuron_faults = fault::enumerate_faults(net, cfg);
    const auto outcome =
        fault::run_detection_campaign(net, report.stimulus.assemble(), neuron_faults);
    EXPECT_EQ(outcome.detected_count(), neuron_faults.size());
  }
}

TEST(TestGenerator, DeterministicForFixedSeed) {
  auto net = make_net(8, 12, 4, 10);
  auto cfg = fast_config();
  cfg.seed = 1234;
  TestGenerator g1(net, cfg);
  const auto r1 = g1.generate();
  TestGenerator g2(net, cfg);
  const auto r2 = g2.generate();
  ASSERT_EQ(r1.stimulus.num_chunks(), r2.stimulus.num_chunks());
  const auto a = r1.stimulus.assemble();
  const auto b = r2.stimulus.assemble();
  ASSERT_EQ(a.numel(), b.numel());
  for (size_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(TestGenerator, BitIdenticalAcrossThreadsAndKernelModes) {
  // The DESIGN.md §10 contract: for a fixed seed the assembled stimulus is
  // byte-identical no matter how many threads run the restart fan-out and
  // no matter which kernel mode computes the forward/backward passes.
  auto net = make_net(8, 12, 4, 15);
  auto cfg = fast_config();
  cfg.seed = 4321;
  cfg.restarts = 3;
  cfg.steps_stage1 = 20;
  cfg.t_in_min = 6;
  cfg.max_iterations = 3;

  std::vector<float> reference;
  size_t reference_chunks = 0;
  const size_t thread_counts[] = {1, 2, 8};
  const snn::KernelMode modes[] = {snn::KernelMode::kDense, snn::KernelMode::kSparse,
                                   snn::KernelMode::kAuto};
  for (size_t threads : thread_counts) {
    for (snn::KernelMode mode : modes) {
      auto run_cfg = cfg;
      run_cfg.num_threads = threads;
      run_cfg.kernel_mode = mode;
      TestGenerator generator(net, run_cfg);
      const auto report = generator.generate();
      const auto stimulus = report.stimulus.assemble();
      if (reference.empty()) {
        reference.assign(stimulus.data(), stimulus.data() + stimulus.numel());
        reference_chunks = report.stimulus.num_chunks();
        ASSERT_FALSE(reference.empty());
        continue;
      }
      ASSERT_EQ(report.stimulus.num_chunks(), reference_chunks)
          << "threads=" << threads << " mode=" << snn::kernel_mode_name(mode);
      ASSERT_EQ(stimulus.numel(), reference.size())
          << "threads=" << threads << " mode=" << snn::kernel_mode_name(mode);
      // byte-identical, not just numerically close
      ASSERT_EQ(std::memcmp(stimulus.data(), reference.data(),
                            reference.size() * sizeof(float)),
                0)
          << "threads=" << threads << " mode=" << snn::kernel_mode_name(mode);
    }
  }
}

TEST(TestGenerator, WinningRestartIsRecorded) {
  auto net = make_net(8, 10, 4, 16);
  auto cfg = fast_config();
  cfg.restarts = 3;
  cfg.num_threads = 2;
  cfg.steps_stage1 = 20;
  TestGenerator generator(net, cfg);
  const auto report = generator.generate();
  ASSERT_GT(report.iterations.size(), 0u);
  for (const auto& it : report.iterations) EXPECT_LT(it.winning_restart, cfg.restarts);
}

TEST(TestGenerator, RespectsTimeLimit) {
  auto net = make_net();
  auto cfg = fast_config();
  cfg.t_limit_seconds = 0.0;  // expire immediately
  TestGenerator generator(net, cfg);
  const auto report = generator.generate();
  EXPECT_TRUE(report.hit_time_limit || report.stimulus.num_chunks() == 0);
}

TEST(TestGenerator, AblationSwitchesRespected) {
  auto net = make_net(8, 10, 4, 11);
  auto cfg = fast_config();
  cfg.use_l3 = false;
  cfg.use_l4 = false;
  cfg.enable_stage2 = false;
  TestGenerator generator(net, cfg);
  const auto report = generator.generate();
  EXPECT_GT(report.stimulus.num_chunks(), 0u);
  for (const auto& it : report.iterations) EXPECT_FALSE(it.stage2_accepted);
}

TEST(TestGenerator, FindMinInputDurationProducesOutputSpikes) {
  auto net = make_net(8, 12, 4, 12);
  auto cfg = fast_config();
  util::Rng rng(cfg.seed);
  const size_t t_min = TestGenerator::find_min_input_duration(net, cfg, rng);
  EXPECT_GE(t_min, 1u);
  EXPECT_LE(t_min, cfg.t_in_max);
}

TEST(TestGenerator, WeakNetTriggersDurationGrowth) {
  // Very weak weights make activation hard; the generator should either
  // grow the window (growths > 0 in some iteration) or report partial
  // activation rather than loop forever.
  auto net = make_net(8, 10, 4, 13, /*gain=*/0.35f);
  auto cfg = fast_config();
  cfg.max_iterations = 3;
  cfg.steps_stage1 = 30;
  TestGenerator generator(net, cfg);
  const auto report = generator.generate();
  // must terminate and produce a well-formed report
  EXPECT_LE(report.iterations.size(), 3u);
  for (const auto& it : report.iterations) {
    EXPECT_LE(it.growths, cfg.max_growths_per_iteration);
    EXPECT_GT(it.duration_steps, 0u);
  }
}

TEST(NaiveFcOptimizer, HillClimbIsMonotoneAndCountsSimulations) {
  auto net = make_net(6, 8, 3, 20);
  auto universe = fault::enumerate_faults(net);
  util::Rng rng(21);
  auto faults = fault::sample_faults(universe, 30, rng);
  core::NaiveFcConfig cfg;
  cfg.iterations = 12;
  cfg.num_steps = 8;
  const auto report = core::naive_fc_optimize(net, faults, cfg);
  // O(M * T_FS): every iteration pays a full campaign.
  EXPECT_EQ(report.fault_simulations, cfg.iterations * faults.size());
  ASSERT_EQ(report.coverage_trace.size(), cfg.iterations);
  for (size_t i = 1; i < report.coverage_trace.size(); ++i) {
    EXPECT_GE(report.coverage_trace[i], report.coverage_trace[i - 1]);
  }
  EXPECT_EQ(report.best_input.shape(), Shape({8, 6}));
  EXPECT_GE(report.best_coverage, report.coverage_trace.front());
}

TEST(TestGenerator, ChunkDurationsMatchEq8Accounting) {
  auto net = make_net(8, 12, 4, 14);
  TestGenerator generator(net, fast_config());
  const auto report = generator.generate();
  size_t expected_total = 0;
  for (size_t j = 0; j < report.stimulus.num_chunks(); ++j) {
    expected_total += report.stimulus.chunk(j).shape().dim(0);
    if (j + 1 < report.stimulus.num_chunks()) {
      expected_total += report.stimulus.chunk(j).shape().dim(0);
    }
  }
  EXPECT_EQ(report.stimulus.total_steps(), expected_total);
}

}  // namespace
}  // namespace snntest::core
