// Layer-level numerical correctness.
//
// The strongest checks are equivalence tests:
//  * ConvLayer vs an explicitly materialized DenseLayer with the same
//    connectivity — forward spikes, input gradients and (mapped) weight
//    gradients must agree exactly.
//  * RecurrentLayer with zero lateral weights vs DenseLayer — identical.
#include <gtest/gtest.h>

#include <cmath>

#include "snn/conv_layer.hpp"
#include "snn/dense_layer.hpp"
#include "snn/pool_layer.hpp"
#include "snn/recurrent_layer.hpp"
#include "util/rng.hpp"

namespace snntest::snn {
namespace {

Tensor random_spikes(size_t T, size_t n, double density, uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(Shape{T, n});
  for (size_t i = 0; i < t.numel(); ++i) t[i] = rng.bernoulli(density) ? 1.0f : 0.0f;
  return t;
}

Tensor random_grad(size_t T, size_t n, uint64_t seed) {
  util::Rng rng(seed);
  Tensor t(Shape{T, n});
  for (size_t i = 0; i < t.numel(); ++i) t[i] = static_cast<float>(rng.uniform(-1.0, 1.0));
  return t;
}

LifParams test_lif() {
  LifParams p;
  p.threshold = 1.0f;
  p.leak = 0.9f;
  p.refractory = 1;
  return p;
}

TEST(DenseLayer, ForwardShapeAndBinaryOutput) {
  DenseLayer layer(8, 5, test_lif());
  util::Rng rng(1);
  layer.init_weights(rng);
  const Tensor in = random_spikes(12, 8, 0.4, 2);
  const Tensor out = layer.forward(in, false);
  EXPECT_EQ(out.shape(), Shape({12, 5}));
  for (size_t i = 0; i < out.numel(); ++i) EXPECT_TRUE(out[i] == 0.0f || out[i] == 1.0f);
}

TEST(DenseLayer, RejectsWrongInputWidth) {
  DenseLayer layer(8, 5, test_lif());
  EXPECT_THROW(layer.forward(Tensor(Shape{4, 7}), false), std::invalid_argument);
}

TEST(DenseLayer, BackwardRequiresRecordedForward) {
  DenseLayer layer(4, 3, test_lif());
  layer.forward(random_spikes(5, 4, 0.5, 3), /*record_traces=*/false);
  EXPECT_THROW(layer.backward(random_grad(5, 3, 4)), std::logic_error);
}

TEST(DenseLayer, StrongPositiveWeightsDriveSpikes) {
  DenseLayer layer(2, 1, test_lif());
  layer.weights() = {2.0f, 2.0f};
  Tensor in(Shape{1, 2}, std::vector<float>{1.0f, 0.0f});
  const Tensor out = layer.forward(in, false);
  EXPECT_EQ(out[0], 1.0f);
}

TEST(DenseLayer, WeightGradAccumulates) {
  DenseLayer layer(3, 2, test_lif());
  util::Rng rng(5);
  layer.init_weights(rng);
  const Tensor in = random_spikes(6, 3, 0.6, 6);
  layer.forward(in, true);
  layer.backward(random_grad(6, 2, 7));
  auto params = layer.params();
  double norm = 0.0;
  for (size_t i = 0; i < params[0].size; ++i) norm += std::fabs(params[0].grad[i]);
  EXPECT_GT(norm, 0.0);
  layer.zero_grad();
  norm = 0.0;
  for (size_t i = 0; i < params[0].size; ++i) norm += std::fabs(params[0].grad[i]);
  EXPECT_EQ(norm, 0.0);
}

TEST(ConvLayer, OutputGeometry) {
  Conv2dSpec spec;
  spec.in_channels = 2;
  spec.in_height = 16;
  spec.in_width = 16;
  spec.out_channels = 8;
  spec.kernel = 3;
  spec.stride = 2;
  spec.padding = 1;
  EXPECT_EQ(spec.out_height(), 8u);
  EXPECT_EQ(spec.out_width(), 8u);
  EXPECT_EQ(spec.output_size(), 512u);
  EXPECT_EQ(spec.weight_count(), 8u * 2u * 9u);
}

TEST(ConvLayer, ConnectionCountExcludesPaddingTaps) {
  Conv2dSpec spec;
  spec.in_channels = 1;
  spec.in_height = 4;
  spec.in_width = 4;
  spec.out_channels = 1;
  spec.kernel = 3;
  spec.stride = 1;
  spec.padding = 1;
  ConvLayer layer(spec, test_lif());
  // interior outputs have 9 taps, edges fewer; total taps for 4x4 with
  // padding 1: corners 4x4, edges 8x6, interior 4x9 = 16+48+36 = 100
  EXPECT_EQ(layer.num_connections(), 100u);
  EXPECT_EQ(layer.num_weights(), 9u);
}

/// Materialize a conv layer as a dense layer with identical connectivity.
DenseLayer densify(const ConvLayer& conv) {
  const auto& spec = conv.spec();
  DenseLayer dense(spec.input_size(), spec.output_size(), conv.lif().defaults());
  auto& w = dense.weights();
  std::fill(w.begin(), w.end(), 0.0f);
  const auto& cw = conv.weights();
  const size_t oh = spec.out_height();
  const size_t ow = spec.out_width();
  const size_t k = spec.kernel;
  for (size_t oc = 0; oc < spec.out_channels; ++oc) {
    for (size_t oy = 0; oy < oh; ++oy) {
      for (size_t ox = 0; ox < ow; ++ox) {
        const size_t out_idx = (oc * oh + oy) * ow + ox;
        for (size_t ic = 0; ic < spec.in_channels; ++ic) {
          for (size_t ky = 0; ky < k; ++ky) {
            const long iy = static_cast<long>(oy * spec.stride + ky) -
                            static_cast<long>(spec.padding);
            if (iy < 0 || iy >= static_cast<long>(spec.in_height)) continue;
            for (size_t kx = 0; kx < k; ++kx) {
              const long ix = static_cast<long>(ox * spec.stride + kx) -
                              static_cast<long>(spec.padding);
              if (ix < 0 || ix >= static_cast<long>(spec.in_width)) continue;
              const size_t in_idx =
                  (ic * spec.in_height + static_cast<size_t>(iy)) * spec.in_width +
                  static_cast<size_t>(ix);
              w[out_idx * spec.input_size() + in_idx] =
                  cw[((oc * spec.in_channels + ic) * k + ky) * k + kx];
            }
          }
        }
      }
    }
  }
  return dense;
}

class ConvDenseEquivalence : public testing::TestWithParam<std::tuple<size_t, size_t, size_t>> {};

TEST_P(ConvDenseEquivalence, ForwardAndBackwardMatch) {
  const auto [stride, padding, channels] = GetParam();
  Conv2dSpec spec;
  spec.in_channels = channels;
  spec.in_height = 6;
  spec.in_width = 6;
  spec.out_channels = 3;
  spec.kernel = 3;
  spec.stride = stride;
  spec.padding = padding;
  ConvLayer conv(spec, test_lif());
  util::Rng rng(42);
  conv.init_weights(rng);
  DenseLayer dense = densify(conv);

  const size_t T = 8;
  const Tensor in = random_spikes(T, spec.input_size(), 0.35, 43);
  const Tensor conv_out = conv.forward(in, true);
  const Tensor dense_out = dense.forward(in, true);
  ASSERT_EQ(conv_out.shape(), dense_out.shape());
  for (size_t i = 0; i < conv_out.numel(); ++i) {
    ASSERT_EQ(conv_out[i], dense_out[i]) << "forward mismatch at " << i;
  }

  const Tensor grad_out = random_grad(T, spec.output_size(), 44);
  const Tensor conv_gin = conv.backward(grad_out);
  const Tensor dense_gin = dense.backward(grad_out);
  ASSERT_EQ(conv_gin.shape(), dense_gin.shape());
  for (size_t i = 0; i < conv_gin.numel(); ++i) {
    ASSERT_NEAR(conv_gin[i], dense_gin[i], 1e-4) << "grad_in mismatch at " << i;
  }

  // Conv weight gradient == sum of the dense gradients over all positions
  // sharing that kernel tap.
  auto conv_params = conv.params();
  auto dense_params = dense.params();
  const size_t oh = spec.out_height();
  const size_t ow = spec.out_width();
  const size_t k = spec.kernel;
  for (size_t oc = 0; oc < spec.out_channels; ++oc) {
    for (size_t ic = 0; ic < spec.in_channels; ++ic) {
      for (size_t ky = 0; ky < k; ++ky) {
        for (size_t kx = 0; kx < k; ++kx) {
          double expected = 0.0;
          for (size_t oy = 0; oy < oh; ++oy) {
            const long iy = static_cast<long>(oy * spec.stride + ky) -
                            static_cast<long>(spec.padding);
            if (iy < 0 || iy >= static_cast<long>(spec.in_height)) continue;
            for (size_t ox = 0; ox < ow; ++ox) {
              const long ix = static_cast<long>(ox * spec.stride + kx) -
                              static_cast<long>(spec.padding);
              if (ix < 0 || ix >= static_cast<long>(spec.in_width)) continue;
              const size_t out_idx = (oc * oh + oy) * ow + ox;
              const size_t in_idx =
                  (ic * spec.in_height + static_cast<size_t>(iy)) * spec.in_width +
                  static_cast<size_t>(ix);
              expected += dense_params[0].grad[out_idx * spec.input_size() + in_idx];
            }
          }
          const size_t widx = ((oc * spec.in_channels + ic) * k + ky) * k + kx;
          ASSERT_NEAR(conv_params[0].grad[widx], expected, 1e-3)
              << "kernel grad mismatch at " << widx;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Geometries, ConvDenseEquivalence,
                         testing::Values(std::tuple<size_t, size_t, size_t>{1, 0, 1},
                                         std::tuple<size_t, size_t, size_t>{1, 1, 2},
                                         std::tuple<size_t, size_t, size_t>{2, 1, 2},
                                         std::tuple<size_t, size_t, size_t>{2, 0, 1},
                                         std::tuple<size_t, size_t, size_t>{3, 1, 1}));

/// Sparse and dense forward kernels must produce bit-identical spike trains
/// for every layer type, density and mode (the KernelMode contract).
template <typename LayerT>
void expect_kernel_modes_identical(const LayerT& reference, const Tensor& in) {
  LayerT dense_layer(reference);
  dense_layer.set_kernel_mode(KernelMode::kDense);
  const Tensor out_dense = dense_layer.forward(in, false);
  for (const KernelMode mode : {KernelMode::kSparse, KernelMode::kAuto}) {
    LayerT layer(reference);
    layer.set_kernel_mode(mode);
    const Tensor out = layer.forward(in, false);
    ASSERT_EQ(out.shape(), out_dense.shape());
    for (size_t i = 0; i < out.numel(); ++i) {
      ASSERT_EQ(out[i], out_dense[i])
          << "mode " << static_cast<int>(mode) << " diverges at " << i;
    }
  }
}

TEST(SparseKernels, DenseLayerBitIdenticalAcrossDensities) {
  DenseLayer layer(48, 32, test_lif());
  util::Rng rng(71);
  layer.init_weights(rng, 1.3f);
  for (const double density : {0.0, 0.02, 0.1, 0.3, 0.7}) {
    expect_kernel_modes_identical(layer, random_spikes(16, 48, density, 72));
  }
}

TEST(SparseKernels, ConvLayerBitIdenticalAcrossGeometries) {
  const std::pair<size_t, size_t> geometries[] = {{1, 0}, {1, 1}, {2, 1}, {3, 1}};
  for (const auto& [stride, padding] : geometries) {
    Conv2dSpec spec;
    spec.in_channels = 2;
    spec.in_height = 9;
    spec.in_width = 7;
    spec.out_channels = 3;
    spec.kernel = 3;
    spec.stride = stride;
    spec.padding = padding;
    ConvLayer layer(spec, test_lif());
    util::Rng rng(73);
    layer.init_weights(rng, 1.2f);
    for (const double density : {0.03, 0.15, 0.6}) {
      expect_kernel_modes_identical(layer, random_spikes(10, spec.input_size(), density, 74));
    }
  }
}

TEST(SparseKernels, ConvLayerBitIdenticalUnderConnectionFault) {
  Conv2dSpec spec;
  spec.in_channels = 1;
  spec.in_height = 8;
  spec.in_width = 8;
  spec.out_channels = 2;
  spec.kernel = 3;
  spec.stride = 1;
  spec.padding = 1;
  ConvLayer layer(spec, test_lif());
  util::Rng rng(75);
  layer.init_weights(rng, 1.2f);
  // Fault the connection from input (0,3,3) to output (1,3,3): same spatial
  // position, centre tap.
  const size_t in_idx = 3 * spec.in_width + 3;
  const size_t out_idx = (1 * spec.out_height() + 3) * spec.out_width() + 3;
  layer.set_connection_override(out_idx, in_idx, 5.0f);
  expect_kernel_modes_identical(layer, random_spikes(12, spec.input_size(), 0.08, 76));
}

TEST(SparseKernels, RecurrentLayerBitIdentical) {
  RecurrentLayer layer(24, 20, test_lif());
  util::Rng rng(77);
  layer.init_weights(rng, 1.3f, 0.6f);
  for (const double density : {0.05, 0.4}) {
    expect_kernel_modes_identical(layer, random_spikes(14, 24, density, 78));
  }
}

/// Regression for the faulted-backward inconsistency: forward applies an
/// active connection override but backward used to ignore it, so gradients
/// through a connection-faulted conv layer disagreed with its own forward.
/// A finite-difference probe of the spiking forward is ill-defined (the
/// Heaviside output is piecewise constant), so the operative consistency
/// check is the file's strongest idiom: the faulted conv must match a
/// materialized dense layer whose weight matrix carries the same fault —
/// bit-equal spikes forward, matching input/weight gradients backward.
TEST(ConvLayer, BackwardConsistentWithForwardUnderConnectionFault) {
  Conv2dSpec spec;
  spec.in_channels = 2;
  spec.in_height = 6;
  spec.in_width = 6;
  spec.out_channels = 3;
  spec.kernel = 3;
  spec.stride = 1;
  spec.padding = 1;
  ConvLayer conv(spec, test_lif());
  util::Rng rng(81);
  conv.init_weights(rng);
  DenseLayer dense = densify(conv);

  // Fault one connection with a large delta so an ignored override is loud.
  const size_t in_idx = (1 * spec.in_height + 2) * spec.in_width + 4;
  const size_t out_idx = (2 * spec.out_height() + 2) * spec.out_width() + 4;
  const float faulty_weight = conv.connection_weight(out_idx, in_idx) + 3.0f;
  conv.set_connection_override(out_idx, in_idx, faulty_weight);
  dense.weights()[out_idx * spec.input_size() + in_idx] = faulty_weight;

  const size_t T = 8;
  const Tensor in = random_spikes(T, spec.input_size(), 0.35, 82);
  const Tensor conv_out = conv.forward(in, true);
  const Tensor dense_out = dense.forward(in, true);
  ASSERT_EQ(conv_out.shape(), dense_out.shape());
  for (size_t i = 0; i < conv_out.numel(); ++i) {
    ASSERT_EQ(conv_out[i], dense_out[i]) << "faulted forward mismatch at " << i;
  }

  const Tensor grad_out = random_grad(T, spec.output_size(), 83);
  const Tensor conv_gin = conv.backward(grad_out);
  const Tensor dense_gin = dense.backward(grad_out);
  ASSERT_EQ(conv_gin.shape(), dense_gin.shape());
  for (size_t i = 0; i < conv_gin.numel(); ++i) {
    ASSERT_NEAR(conv_gin[i], dense_gin[i], 1e-4) << "faulted grad_in mismatch at " << i;
  }

  // The stored-weight gradient is unaffected by the additive fault: the tap
  // serving the faulted connection still accumulates g * input, so the
  // densified sum over positions sharing the tap must still match.
  auto conv_params = conv.params();
  auto dense_params = dense.params();
  const size_t k = spec.kernel;
  for (size_t widx = 0; widx < conv_params[0].size; ++widx) {
    const size_t kx = widx % k;
    const size_t ky = (widx / k) % k;
    const size_t ic = (widx / (k * k)) % spec.in_channels;
    const size_t oc = widx / (k * k * spec.in_channels);
    double expected = 0.0;
    for (size_t oy = 0; oy < spec.out_height(); ++oy) {
      const long iy = static_cast<long>(oy * spec.stride + ky) - static_cast<long>(spec.padding);
      if (iy < 0 || iy >= static_cast<long>(spec.in_height)) continue;
      for (size_t ox = 0; ox < spec.out_width(); ++ox) {
        const long ix = static_cast<long>(ox * spec.stride + kx) - static_cast<long>(spec.padding);
        if (ix < 0 || ix >= static_cast<long>(spec.in_width)) continue;
        const size_t o = (oc * spec.out_height() + oy) * spec.out_width() + ox;
        const size_t ii =
            (ic * spec.in_height + static_cast<size_t>(iy)) * spec.in_width +
            static_cast<size_t>(ix);
        expected += dense_params[0].grad[o * spec.input_size() + ii];
      }
    }
    ASSERT_NEAR(conv_params[0].grad[widx], expected, 1e-3) << "kernel grad mismatch at " << widx;
  }
}

TEST(RecurrentLayer, ZeroLateralEqualsDense) {
  const size_t in = 6, out = 5, T = 10;
  RecurrentLayer rec(in, out, test_lif());
  util::Rng rng(9);
  rec.init_weights(rng, 1.0f, 0.0f);
  std::fill(rec.recurrent_weights().begin(), rec.recurrent_weights().end(), 0.0f);
  DenseLayer dense(in, out, test_lif());
  dense.weights() = rec.weights();

  const Tensor input = random_spikes(T, in, 0.4, 10);
  const Tensor rec_out = rec.forward(input, true);
  const Tensor dense_out = dense.forward(input, true);
  for (size_t i = 0; i < rec_out.numel(); ++i) ASSERT_EQ(rec_out[i], dense_out[i]);

  const Tensor grad_out = random_grad(T, out, 11);
  const Tensor g1 = rec.backward(grad_out);
  const Tensor g2 = dense.backward(grad_out);
  for (size_t i = 0; i < g1.numel(); ++i) ASSERT_NEAR(g1[i], g2[i], 1e-5);

  auto rp = rec.params();
  auto dp = dense.params();
  for (size_t i = 0; i < dp[0].size; ++i) ASSERT_NEAR(rp[0].grad[i], dp[0].grad[i], 1e-4);
}

TEST(RecurrentLayer, LateralWeightsChangeDynamics) {
  const size_t n = 4, T = 12;
  RecurrentLayer rec(n, n, test_lif());
  util::Rng rng(12);
  rec.init_weights(rng, 1.2f, 0.0f);
  const Tensor input = random_spikes(T, n, 0.6, 13);
  const Tensor base = rec.forward(input, false);
  // strong excitatory lateral weights should add spikes
  for (auto& w : rec.recurrent_weights()) w = 1.5f;
  for (size_t i = 0; i < n; ++i) rec.recurrent_weights()[i * n + i] = 0.0f;
  const Tensor excited = rec.forward(input, false);
  EXPECT_GE(excited.count_nonzero(), base.count_nonzero());
}

TEST(RecurrentLayer, NoSelfLoopsAfterInit) {
  RecurrentLayer rec(3, 7, test_lif());
  util::Rng rng(14);
  rec.init_weights(rng);
  for (size_t i = 0; i < 7; ++i) EXPECT_EQ(rec.recurrent_weights()[i * 7 + i], 0.0f);
}

TEST(SumPoolLayer, DownsamplesEvents) {
  SumPoolSpec spec;
  spec.channels = 1;
  spec.in_height = 4;
  spec.in_width = 4;
  spec.window = 2;
  LifParams p = test_lif();
  p.threshold = 0.9f;  // one spike in the window is enough to fire
  SumPoolLayer pool(spec, p);
  Tensor in(Shape{1, 16});
  in[0] = 1.0f;  // top-left pixel
  const Tensor out = pool.forward(in, false);
  EXPECT_EQ(out.shape(), Shape({1, 4}));
  EXPECT_EQ(out[0], 1.0f);
  EXPECT_EQ(out[1], 0.0f);
}

TEST(SumPoolLayer, HasNoTrainableWeights) {
  SumPoolSpec spec;
  spec.channels = 2;
  spec.in_height = 4;
  spec.in_width = 4;
  spec.window = 2;
  SumPoolLayer pool(spec, test_lif());
  EXPECT_TRUE(pool.params().empty());
  EXPECT_EQ(pool.num_weights(), 0u);
  EXPECT_EQ(pool.num_connections(), 2u * 4u * 4u);
}

TEST(LayerClone, IndependentCopies) {
  DenseLayer layer(3, 2, test_lif());
  util::Rng rng(15);
  layer.init_weights(rng);
  auto copy = layer.clone();
  static_cast<DenseLayer*>(copy.get())->weights()[0] += 1.0f;
  EXPECT_NE(static_cast<DenseLayer*>(copy.get())->weights()[0], layer.weights()[0]);
}

}  // namespace
}  // namespace snntest::snn
