// Training-stack tests: Adam on analytic problems, schedules, spike-train
// losses (values + gradient directions), metrics, and an end-to-end check
// that the trainer actually improves accuracy on a tiny separable problem.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "data/dataset.hpp"
#include "snn/dense_layer.hpp"
#include "train/adam.hpp"
#include "train/loss.hpp"
#include "train/metrics.hpp"
#include "train/schedule.hpp"
#include "train/trainer.hpp"

namespace snntest::train {
namespace {

TEST(Adam, MinimizesQuadratic) {
  // f(x) = (x - 3)^2, grad = 2(x - 3)
  float x = 0.0f;
  float grad = 0.0f;
  AdamConfig cfg;
  cfg.lr = 0.1;
  AdamOptimizer adam(cfg);
  adam.attach(&x, &grad, 1);
  for (int i = 0; i < 500; ++i) {
    grad = 2.0f * (x - 3.0f);
    adam.step();
  }
  EXPECT_NEAR(x, 3.0f, 0.05f);
}

TEST(Adam, MinimizesMultiDimensional) {
  std::vector<float> x(8, 5.0f);
  std::vector<float> grad(8, 0.0f);
  AdamConfig cfg;
  cfg.lr = 0.2;
  AdamOptimizer adam(cfg);
  adam.attach(x.data(), grad.data(), x.size());
  for (int i = 0; i < 400; ++i) {
    for (size_t j = 0; j < x.size(); ++j) grad[j] = 2.0f * x[j];
    adam.step();
  }
  for (float v : x) EXPECT_NEAR(v, 0.0f, 0.05f);
}

TEST(Adam, GradClippingBoundsStep) {
  float x = 0.0f;
  float grad = 1e6f;
  AdamConfig cfg;
  cfg.lr = 0.1;
  cfg.grad_clip_norm = 1.0;
  AdamOptimizer adam(cfg);
  adam.attach(&x, &grad, 1);
  adam.step();
  // first Adam step magnitude is ~lr regardless, but the moments must be
  // built from the clipped gradient
  EXPECT_LE(std::fabs(x), 0.2f);
}

TEST(Adam, RejectsBadConfig) {
  AdamConfig bad;
  bad.lr = 0.0;
  EXPECT_THROW(AdamOptimizer{bad}, std::invalid_argument);
  bad = AdamConfig{};
  bad.beta1 = 1.0;
  EXPECT_THROW(AdamOptimizer{bad}, std::invalid_argument);
}

TEST(Adam, ResetMomentsRestartsState) {
  float x = 0.0f;
  float grad = 1.0f;
  AdamOptimizer adam;
  adam.attach(&x, &grad, 1);
  adam.step();
  EXPECT_EQ(adam.steps_taken(), 1u);
  adam.reset_moments();
  EXPECT_EQ(adam.steps_taken(), 0u);
}

TEST(Schedules, CosineEndpoints) {
  CosineSchedule s(1.0, 0.1);
  EXPECT_NEAR(s.at(0, 100), 1.0, 1e-9);
  EXPECT_NEAR(s.at(99, 100), 0.1, 1e-9);
  EXPECT_GT(s.at(25, 100), s.at(75, 100));
}

TEST(Schedules, CosineDegenerateSingleStep) {
  CosineSchedule s(1.0, 0.1);
  EXPECT_DOUBLE_EQ(s.at(0, 1), 1.0);
}

TEST(Schedules, ExponentialFloors) {
  ExponentialSchedule s(1.0, 0.5, 0.2);
  EXPECT_DOUBLE_EQ(s.at(0, 10), 1.0);
  EXPECT_DOUBLE_EQ(s.at(1, 10), 0.5);
  EXPECT_DOUBLE_EQ(s.at(10, 10), 0.2);  // floored
}

TEST(Schedules, StepDecay) {
  StepDecaySchedule s(1.0, 0.1, 5);
  EXPECT_DOUBLE_EQ(s.at(4, 100), 1.0);
  EXPECT_DOUBLE_EQ(s.at(5, 100), 0.1);
  EXPECT_NEAR(s.at(10, 100), 0.01, 1e-12);
}

TEST(Schedules, Constant) {
  ConstantSchedule s(0.7);
  EXPECT_DOUBLE_EQ(s.at(0, 10), 0.7);
  EXPECT_DOUBLE_EQ(s.at(9, 10), 0.7);
}

Tensor output_with_counts(const std::vector<size_t>& counts, size_t T) {
  Tensor out(tensor::Shape{T, counts.size()});
  for (size_t i = 0; i < counts.size(); ++i) {
    for (size_t t = 0; t < counts[i]; ++t) out.at(t, i) = 1.0f;
  }
  return out;
}

TEST(SpikeCountLoss, ZeroAtTarget) {
  // T = 10, targets: true 0.5 -> 5 spikes, false 0.05 -> 0.5 spikes.
  SpikeCountLoss loss(0.5, 0.0);
  const auto out = output_with_counts({5, 0, 0}, 10);
  const auto result = loss.compute(out, 0);
  EXPECT_NEAR(result.value, 0.0, 1e-9);
}

TEST(SpikeCountLoss, GradientSignsPushTowardsTargets) {
  SpikeCountLoss loss(0.5, 0.05);
  // true class fires 0 (too few -> negative grad), false fires 9 (too many
  // -> positive grad)
  const auto out = output_with_counts({0, 9}, 10);
  const auto result = loss.compute(out, 0);
  EXPECT_GT(result.value, 0.0);
  EXPECT_LT(result.grad_output.at(0, 0), 0.0f);  // want more spikes
  EXPECT_GT(result.grad_output.at(0, 1), 0.0f);  // want fewer spikes
}

TEST(SpikeCountLoss, RejectsBadLabel) {
  SpikeCountLoss loss;
  const auto out = output_with_counts({1, 1}, 4);
  EXPECT_THROW(loss.compute(out, 5), std::invalid_argument);
}

TEST(RateCrossEntropy, LowerLossForCorrectDominantClass) {
  RateCrossEntropyLoss loss(4.0);
  const auto good = output_with_counts({9, 1, 1}, 10);
  const auto bad = output_with_counts({1, 9, 1}, 10);
  EXPECT_LT(loss.compute(good, 0).value, loss.compute(bad, 0).value);
}

TEST(RateCrossEntropy, GradientPushesTrueClassUp) {
  RateCrossEntropyLoss loss(4.0);
  const auto out = output_with_counts({2, 2, 2}, 10);
  const auto result = loss.compute(out, 1);
  EXPECT_LT(result.grad_output.at(0, 1), 0.0f);
  EXPECT_GT(result.grad_output.at(0, 0), 0.0f);
}

// Minimal two-class dataset: class 0 spikes on channels [0..n/2), class 1 on
// the other half. Trivially separable — the trainer must solve it.
class ToyDataset final : public data::Dataset {
 public:
  ToyDataset(size_t count, size_t channels, size_t steps)
      : count_(count), channels_(channels), steps_(steps) {}
  std::string name() const override { return "toy"; }
  size_t size() const override { return count_; }
  size_t num_classes() const override { return 2; }
  size_t input_size() const override { return channels_; }
  size_t num_steps() const override { return steps_; }
  data::Sample get(size_t index) const override {
    data::Sample s;
    s.label = index % 2;
    s.input = tensor::Tensor(tensor::Shape{steps_, channels_});
    util::Rng rng(1000 + index);
    for (size_t t = 0; t < steps_; ++t) {
      for (size_t c = 0; c < channels_; ++c) {
        const bool active_half = (s.label == 0) == (c < channels_ / 2);
        if (active_half && rng.bernoulli(0.5)) s.input.at(t, c) = 1.0f;
      }
    }
    return s;
  }

 private:
  size_t count_;
  size_t channels_;
  size_t steps_;
};

TEST(Trainer, LearnsSeparableProblem) {
  ToyDataset train_set(64, 8, 8);
  ToyDataset test_set(32, 8, 8);
  util::Rng rng(3);
  snn::LifParams lif;
  snn::Network net("toy");
  auto l1 = std::make_unique<snn::DenseLayer>(8, 12, lif);
  l1->init_weights(rng, 1.2f);
  net.add_layer(std::move(l1));
  auto l2 = std::make_unique<snn::DenseLayer>(12, 2, lif);
  l2->init_weights(rng, 1.2f);
  net.add_layer(std::move(l2));

  const double before = evaluate(net, test_set).accuracy;
  TrainerConfig tc;
  tc.epochs = 40;
  tc.lr = 5e-3;
  tc.lr_final = 1e-3;
  tc.verbose = false;
  Trainer trainer(net, tc);
  const auto after = trainer.fit(train_set, test_set);
  EXPECT_GT(after.accuracy, 0.85);
  EXPECT_GE(after.accuracy, before);
}

TEST(Metrics, ConfusionMatrixConsistent) {
  ToyDataset ds(20, 8, 8);
  util::Rng rng(4);
  snn::Network net("toy2");
  auto l1 = std::make_unique<snn::DenseLayer>(8, 2, snn::LifParams{});
  l1->init_weights(rng, 1.5f);
  net.add_layer(std::move(l1));
  const auto result = evaluate(net, ds);
  EXPECT_EQ(result.total, 20u);
  size_t diag = 0, total = 0;
  for (size_t i = 0; i < result.confusion.size(); ++i) {
    for (size_t j = 0; j < result.confusion[i].size(); ++j) {
      total += result.confusion[i][j];
      if (i == j) diag += result.confusion[i][j];
    }
  }
  EXPECT_EQ(total, 20u);
  EXPECT_EQ(diag, result.correct);
}

TEST(Metrics, MaxSamplesLimitsEvaluation) {
  ToyDataset ds(50, 8, 8);
  util::Rng rng(5);
  snn::Network net("toy3");
  auto l1 = std::make_unique<snn::DenseLayer>(8, 2, snn::LifParams{});
  l1->init_weights(rng, 1.5f);
  net.add_layer(std::move(l1));
  EXPECT_EQ(evaluate(net, ds, 10).total, 10u);
}

}  // namespace
}  // namespace snntest::train
