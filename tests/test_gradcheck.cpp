// Finite-difference validation of the analytic BPTT gradients.
//
// The spike function is a Heaviside step, so the network output is
// piecewise-constant in its inputs and naive finite differences measure
// nothing. What the backward pass actually computes is the derivative of a
// *relaxed* model: spikes are locally replaced by the primitive of the
// surrogate derivative, the reset branch is detached, and every discrete
// decision (spike yes/no, refractory, integration) is frozen to the values
// recorded during the forward pass. That relaxed model is smooth, so we
// rebuild it here in double precision — "frozen-decision replay" — and
// compare central finite differences through it against the float analytic
// gradients, for every layer type and every loss, in both the dense and the
// sparse (gather/scatter) backward modes. Agreement to ~1e-4 relative error
// validates both the BPTT chain rule and the sparse kernels' bit-identity
// claim end to end.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

#include "core/losses.hpp"
#include "snn/conv_layer.hpp"
#include "snn/dense_layer.hpp"
#include "snn/pool_layer.hpp"
#include "snn/recurrent_layer.hpp"
#include "util/rng.hpp"

namespace snntest {
namespace {

using snn::KernelMode;
using tensor::Shape;
using tensor::Tensor;

// ---------------------------------------------------------------------------
// Relaxed frozen-decision replay
// ---------------------------------------------------------------------------

/// Primitive S(x) of the surrogate derivative: the smooth stand-in for the
/// Heaviside step whose slope the backward pass uses. S need only be defined
/// up to a constant; S(0) = 0 is chosen for symmetry.
double spike_primitive(const snn::SurrogateConfig& cfg, double x) {
  switch (cfg.kind) {
    case snn::SurrogateKind::kFastSigmoid:
      // d/dx [x / (1 + a|x|)] = 1 / (1 + a|x|)^2
      return x / (1.0 + cfg.alpha * std::fabs(x));
    case snn::SurrogateKind::kAtan: {
      // d/dx [atan(pi*a*x/2) / pi] = (a/2) / (1 + (pi*a*x/2)^2)
      const double z = 0.5 * std::numbers::pi * cfg.alpha * x;
      return std::atan(z) / std::numbers::pi;
    }
    case snn::SurrogateKind::kRectangular: {
      const double lim = 1.0 / cfg.alpha;
      return 0.5 * cfg.alpha * std::clamp(x, -lim, lim);
    }
  }
  return 0.0;
}

/// Branch decisions recorded during the base forward pass.
struct FrozenTraces {
  size_t T = 0;
  size_t n = 0;
  std::vector<float> u_pre;
  std::vector<uint8_t> spike;
  std::vector<uint8_t> integrated;
};

FrozenTraces capture_traces(const snn::Layer& layer, size_t T) {
  const auto& lif = layer.lif();
  FrozenTraces tr;
  tr.T = T;
  tr.n = lif.size();
  tr.u_pre = lif.trace_u_pre();
  tr.spike = lif.trace_spikes();
  tr.integrated = lif.trace_integrated();
  return tr;
}

/// Replay the LIF dynamics in double with frozen decisions. `syn_fn(t, prev,
/// syn)` must fill `syn` with the relaxed synaptic current of step t; `prev`
/// holds the relaxed outputs of step t-1 (zeros at t = 0) so recurrent
/// feedback stays differentiable. The relaxed output of an integrated step is
///   s~[t] = s_rec[t] + S(u~_pre - th) - S(u_pre_rec - th),
/// which equals the recorded spike at the base point and has slope
/// S'(u_pre - th) — exactly the surrogate the analytic backward applies.
/// Non-integrated (refractory) steps emit the recorded constant and hold the
/// membrane at reset: the chain through time is cut, as in LifBank::Backward.
template <typename SynFn>
std::vector<double> relaxed_lif_run(const FrozenTraces& tr, const snn::LifParams& p,
                                    const snn::SurrogateConfig& surr, SynFn&& syn_fn) {
  std::vector<double> s_out(tr.T * tr.n, 0.0);
  std::vector<double> u(tr.n, p.reset_potential);
  std::vector<double> syn(tr.n, 0.0);
  std::vector<double> prev(tr.n, 0.0);
  for (size_t t = 0; t < tr.T; ++t) {
    std::fill(syn.begin(), syn.end(), 0.0);
    syn_fn(t, prev, syn);
    for (size_t i = 0; i < tr.n; ++i) {
      const size_t idx = t * tr.n + i;
      if (!tr.integrated[idx]) {
        s_out[idx] = tr.spike[idx];
        u[i] = p.reset_potential;
        continue;
      }
      const double u_pre = p.leak * u[i] + syn[i];
      s_out[idx] = tr.spike[idx] + spike_primitive(surr, u_pre - p.threshold) -
                   spike_primitive(surr, static_cast<double>(tr.u_pre[idx]) - p.threshold);
      // Detached reset: after a recorded spike the membrane restarts from the
      // constant reset potential and carries no gradient.
      u[i] = tr.spike[idx] ? p.reset_potential : u_pre;
    }
    for (size_t i = 0; i < tr.n; ++i) prev[i] = s_out[t * tr.n + i];
  }
  return s_out;
}

// ---------------------------------------------------------------------------
// FD driver
// ---------------------------------------------------------------------------

struct GradCheckStats {
  double max_rel = 0.0;
  size_t checked = 0;
};

/// Scale floor for the relative-error denominator: gradients far below the
/// vector's dominant magnitude are checked in (scaled) absolute terms, so
/// float rounding noise in near-zero entries cannot fake a large "relative"
/// error while real formula bugs (which perturb at gradient scale) still
/// blow past the 1e-4 bar.
double grad_scale(const float* g, size_t count) {
  double m = 0.0;
  for (size_t i = 0; i < count; ++i) m = std::max(m, std::fabs(static_cast<double>(g[i])));
  return std::max(0.01, 0.1 * m);
}

/// Central finite differences of `eval()` w.r.t. every entry of `param`,
/// compared against the analytic gradient.
template <typename F>
void fd_compare(std::vector<double>& param, const float* analytic, size_t count, F&& eval,
                GradCheckStats& stats) {
  const double eps = 1e-5;
  const double floor = grad_scale(analytic, count);
  for (size_t j = 0; j < count; ++j) {
    const double orig = param[j];
    param[j] = orig + eps;
    const double lp = eval();
    param[j] = orig - eps;
    const double lm = eval();
    param[j] = orig;
    const double fd = (lp - lm) / (2.0 * eps);
    const double an = static_cast<double>(analytic[j]);
    const double denom = std::max({std::fabs(fd), std::fabs(an), floor});
    stats.max_rel = std::max(stats.max_rel, std::fabs(fd - an) / denom);
    ++stats.checked;
  }
}

double dot_objective(const std::vector<double>& s, const std::vector<float>& c) {
  double acc = 0.0;
  for (size_t i = 0; i < s.size(); ++i) acc += static_cast<double>(c[i]) * s[i];
  return acc;
}

// ---------------------------------------------------------------------------
// Common fixtures
// ---------------------------------------------------------------------------

Tensor random_binary(size_t T, size_t n, double density, util::Rng& rng) {
  Tensor t(Shape{T, n});
  for (size_t i = 0; i < t.numel(); ++i) t[i] = rng.bernoulli(density) ? 1.0f : 0.0f;
  return t;
}

std::vector<float> random_coeffs(size_t count, util::Rng& rng) {
  std::vector<float> c(count);
  for (auto& v : c) v = static_cast<float>(rng.uniform(-1.0, 1.0));
  return c;
}

std::vector<double> to_double(const float* data, size_t count) {
  return std::vector<double>(data, data + count);
}

constexpr double kTol = 1e-4;
const KernelMode kModes[] = {KernelMode::kDense, KernelMode::kSparse};

// ---------------------------------------------------------------------------
// Layer gradchecks: L = sum c[t,i] * s~[t,i] with fixed random coefficients.
// Analytic dL/d(input) and dL/dW come from layer.backward(c); the reference
// is the double replay above.
// ---------------------------------------------------------------------------

TEST(GradCheck, DenseLayerInputAndWeights) {
  for (const auto kind : {snn::SurrogateKind::kFastSigmoid, snn::SurrogateKind::kAtan}) {
    for (const KernelMode mode : kModes) {
      const size_t T = 7, n_in = 6, n = 8;
      util::Rng rng(101);
      snn::LifParams lif;
      snn::DenseLayer layer(n_in, n, lif);
      layer.init_weights(rng, 1.1f);
      layer.surrogate().kind = kind;
      layer.set_kernel_mode(mode);
      const Tensor in = random_binary(T, n_in, 0.4, rng);

      layer.zero_grad();
      const Tensor out = layer.forward(in, /*record_traces=*/true);
      ASSERT_GT(out.count_nonzero(), 0u);
      ASSERT_LT(out.count_nonzero(), out.numel());
      const FrozenTraces tr = capture_traces(layer, T);

      const std::vector<float> c = random_coeffs(out.numel(), rng);
      Tensor grad_out(out.shape());
      std::copy(c.begin(), c.end(), grad_out.data());
      const Tensor grad_in = layer.backward(grad_out);
      const auto params = layer.params();

      std::vector<double> W = to_double(params[0].value, params[0].size);
      std::vector<double> x = to_double(in.data(), in.numel());
      const auto& surr = layer.surrogate();
      auto eval = [&] {
        auto syn_fn = [&](size_t t, const std::vector<double>&, std::vector<double>& syn) {
          const double* xf = x.data() + t * n_in;
          for (size_t i = 0; i < n; ++i) {
            double acc = 0.0;
            const double* w = W.data() + i * n_in;
            for (size_t j = 0; j < n_in; ++j) acc += w[j] * xf[j];
            syn[i] = acc;
          }
        };
        return dot_objective(relaxed_lif_run(tr, lif, surr, syn_fn), c);
      };

      GradCheckStats input_stats, weight_stats;
      fd_compare(x, grad_in.data(), grad_in.numel(), eval, input_stats);
      fd_compare(W, params[0].grad, params[0].size, eval, weight_stats);
      EXPECT_LT(input_stats.max_rel, kTol) << "mode " << snn::kernel_mode_name(mode);
      EXPECT_LT(weight_stats.max_rel, kTol) << "mode " << snn::kernel_mode_name(mode);
      EXPECT_EQ(input_stats.checked, in.numel());
      EXPECT_EQ(weight_stats.checked, params[0].size);
    }
  }
}

TEST(GradCheck, ConvLayerInputAndWeights) {
  const snn::Conv2dSpec specs[] = {
      {/*in_channels=*/2, /*in_height=*/5, /*in_width=*/5, /*out_channels=*/3, /*kernel=*/3,
       /*stride=*/1, /*padding=*/1},
      {/*in_channels=*/2, /*in_height=*/6, /*in_width=*/6, /*out_channels=*/2, /*kernel=*/3,
       /*stride=*/2, /*padding=*/0},
  };
  for (const auto& spec : specs) {
    for (const KernelMode mode : kModes) {
      const size_t T = 5;
      util::Rng rng(202);
      snn::LifParams lif;
      snn::ConvLayer layer(spec, lif);
      layer.init_weights(rng, 1.3f);
      layer.set_kernel_mode(mode);
      const Tensor in = random_binary(T, spec.input_size(), 0.35, rng);

      layer.zero_grad();
      const Tensor out = layer.forward(in, /*record_traces=*/true);
      ASSERT_GT(out.count_nonzero(), 0u);
      const FrozenTraces tr = capture_traces(layer, T);

      const std::vector<float> c = random_coeffs(out.numel(), rng);
      Tensor grad_out(out.shape());
      std::copy(c.begin(), c.end(), grad_out.data());
      const Tensor grad_in = layer.backward(grad_out);
      const auto params = layer.params();

      std::vector<double> W = to_double(params[0].value, params[0].size);
      std::vector<double> x = to_double(in.data(), in.numel());
      const auto& surr = layer.surrogate();
      const size_t oh = spec.out_height(), ow = spec.out_width(), k = spec.kernel;
      auto eval = [&] {
        auto syn_fn = [&](size_t t, const std::vector<double>&, std::vector<double>& syn) {
          const double* xf = x.data() + t * spec.input_size();
          for (size_t oc = 0; oc < spec.out_channels; ++oc) {
            for (size_t oy = 0; oy < oh; ++oy) {
              for (size_t ox = 0; ox < ow; ++ox) {
                double acc = 0.0;
                for (size_t ic = 0; ic < spec.in_channels; ++ic) {
                  const double* wb = W.data() + ((oc * spec.in_channels + ic) * k) * k;
                  for (size_t ky = 0; ky < k; ++ky) {
                    const long iy = static_cast<long>(oy * spec.stride + ky) -
                                    static_cast<long>(spec.padding);
                    if (iy < 0 || iy >= static_cast<long>(spec.in_height)) continue;
                    for (size_t kx = 0; kx < k; ++kx) {
                      const long ix = static_cast<long>(ox * spec.stride + kx) -
                                      static_cast<long>(spec.padding);
                      if (ix < 0 || ix >= static_cast<long>(spec.in_width)) continue;
                      acc += wb[ky * k + kx] *
                             xf[(ic * spec.in_height + static_cast<size_t>(iy)) * spec.in_width +
                                static_cast<size_t>(ix)];
                    }
                  }
                }
                syn[(oc * oh + oy) * ow + ox] = acc;
              }
            }
          }
        };
        return dot_objective(relaxed_lif_run(tr, lif, surr, syn_fn), c);
      };

      GradCheckStats input_stats, weight_stats;
      fd_compare(x, grad_in.data(), grad_in.numel(), eval, input_stats);
      fd_compare(W, params[0].grad, params[0].size, eval, weight_stats);
      EXPECT_LT(input_stats.max_rel, kTol)
          << "mode " << snn::kernel_mode_name(mode) << " stride " << spec.stride;
      EXPECT_LT(weight_stats.max_rel, kTol)
          << "mode " << snn::kernel_mode_name(mode) << " stride " << spec.stride;
    }
  }
}

TEST(GradCheck, RecurrentLayerInputAndBothWeightMatrices) {
  for (const KernelMode mode : kModes) {
    const size_t T = 8, n_in = 4, n = 6;
    util::Rng rng(303);
    snn::LifParams lif;
    snn::RecurrentLayer layer(n_in, n, lif);
    layer.init_weights(rng, 1.2f, 0.8f);
    layer.set_kernel_mode(mode);
    const Tensor in = random_binary(T, n_in, 0.45, rng);

    layer.zero_grad();
    const Tensor out = layer.forward(in, /*record_traces=*/true);
    ASSERT_GT(out.count_nonzero(), 0u);
    const FrozenTraces tr = capture_traces(layer, T);

    const std::vector<float> c = random_coeffs(out.numel(), rng);
    Tensor grad_out(out.shape());
    std::copy(c.begin(), c.end(), grad_out.data());
    const Tensor grad_in = layer.backward(grad_out);
    const auto params = layer.params();  // [0] feed-forward, [1] recurrent

    std::vector<double> W = to_double(params[0].value, params[0].size);
    std::vector<double> V = to_double(params[1].value, params[1].size);
    std::vector<double> x = to_double(in.data(), in.numel());
    const auto& surr = layer.surrogate();
    auto eval = [&] {
      // The lateral feedback consumes the *relaxed* previous outputs, so the
      // FD path exercises the V^T credit assignment through time.
      auto syn_fn = [&](size_t t, const std::vector<double>& prev, std::vector<double>& syn) {
        const double* xf = x.data() + t * n_in;
        for (size_t i = 0; i < n; ++i) {
          double acc = 0.0;
          const double* w = W.data() + i * n_in;
          for (size_t j = 0; j < n_in; ++j) acc += w[j] * xf[j];
          if (t > 0) {
            const double* v = V.data() + i * n;
            for (size_t j = 0; j < n; ++j) acc += v[j] * prev[j];
          }
          syn[i] = acc;
        }
      };
      return dot_objective(relaxed_lif_run(tr, lif, surr, syn_fn), c);
    };

    GradCheckStats input_stats, w_stats, v_stats;
    fd_compare(x, grad_in.data(), grad_in.numel(), eval, input_stats);
    fd_compare(W, params[0].grad, params[0].size, eval, w_stats);
    fd_compare(V, params[1].grad, params[1].size, eval, v_stats);
    EXPECT_LT(input_stats.max_rel, kTol) << "mode " << snn::kernel_mode_name(mode);
    EXPECT_LT(w_stats.max_rel, kTol) << "mode " << snn::kernel_mode_name(mode);
    EXPECT_LT(v_stats.max_rel, kTol) << "mode " << snn::kernel_mode_name(mode);
  }
}

TEST(GradCheck, SumPoolLayerInput) {
  const size_t T = 6;
  snn::SumPoolSpec spec;
  spec.channels = 1;
  spec.in_height = 4;
  spec.in_width = 4;
  spec.window = 2;
  util::Rng rng(404);
  snn::LifParams lif;
  snn::SumPoolLayer layer(spec, lif);
  const Tensor in = random_binary(T, spec.input_size(), 0.4, rng);

  const Tensor out = layer.forward(in, /*record_traces=*/true);
  ASSERT_GT(out.count_nonzero(), 0u);
  const FrozenTraces tr = capture_traces(layer, T);

  const std::vector<float> c = random_coeffs(out.numel(), rng);
  Tensor grad_out(out.shape());
  std::copy(c.begin(), c.end(), grad_out.data());
  const Tensor grad_in = layer.backward(grad_out);

  std::vector<double> x = to_double(in.data(), in.numel());
  const auto& surr = layer.surrogate();
  const size_t oh = spec.out_height(), ow = spec.out_width();
  auto eval = [&] {
    auto syn_fn = [&](size_t t, const std::vector<double>&, std::vector<double>& syn) {
      const double* xf = x.data() + t * spec.input_size();
      for (size_t ch = 0; ch < spec.channels; ++ch) {
        const double* base = xf + ch * spec.in_height * spec.in_width;
        for (size_t oy = 0; oy < oh; ++oy) {
          for (size_t ox = 0; ox < ow; ++ox) {
            double acc = 0.0;
            for (size_t wy = 0; wy < spec.window; ++wy) {
              for (size_t wx = 0; wx < spec.window; ++wx) {
                acc += base[(oy * spec.window + wy) * spec.in_width + ox * spec.window + wx];
              }
            }
            syn[(ch * oh + oy) * ow + ox] = acc;
          }
        }
      }
    };
    return dot_objective(relaxed_lif_run(tr, lif, surr, syn_fn), c);
  };

  GradCheckStats input_stats;
  fd_compare(x, grad_in.data(), grad_in.numel(), eval, input_stats);
  EXPECT_LT(input_stats.max_rel, kTol);
}

// ---------------------------------------------------------------------------
// Loss gradchecks.
//
// The literal loss values are piecewise-constant in the spike trains (counts
// threshold at 0.5, signs are frozen), so FD runs against the per-loss
// *relaxed functional*: the smooth local model whose gradient the loss code
// reports. Branch decisions (which neurons are silent, transition signs,
// output-mismatch signs) are frozen from the base binary trains; within those
// branches the functional is linear or quadratic in the train entries.
// ---------------------------------------------------------------------------

namespace core_check {

using namespace snntest::core;

struct LossFixture {
  snn::Network net{"gradcheck-loss-net"};
  snn::ForwardResult base;                 // fabricated binary trains
  std::vector<std::vector<double>> relax;  // double copies, FD perturbs these
  size_t T = 6;

  LossFixture() {
    util::Rng rng(505);
    snn::LifParams lif;
    auto l0 = std::make_unique<snn::DenseLayer>(5, 6, lif);
    l0->init_weights(rng, 1.0f);
    net.add_layer(std::move(l0));
    auto l1 = std::make_unique<snn::DenseLayer>(6, 4, lif);
    l1->init_weights(rng, 1.0f);
    net.add_layer(std::move(l1));
    auto l2 = std::make_unique<snn::RecurrentLayer>(4, 3, lif);
    l2->init_weights(rng, 1.0f, 0.7f);
    net.add_layer(std::move(l2));

    // L4 / the activation losses only read o.layer_outputs and the weights,
    // so fabricated binary trains are fine — and give full control over which
    // neurons are silent (column 0 of every layer stays dark so the
    // activation hinge and its -1-per-timestep subgradient are exercised).
    for (const size_t width : {6u, 4u, 3u}) {
      Tensor train = random_binary(T, width, 0.4, rng);
      for (size_t t = 0; t < T; ++t) train.row(t)[0] = 0.0f;
      base.layer_outputs.push_back(std::move(train));
    }
    for (const auto& train : base.layer_outputs) {
      relax.push_back(to_double(train.data(), train.numel()));
    }
  }

  std::vector<Tensor> analytic(const SpikeLoss& loss, double* value = nullptr) {
    std::vector<Tensor> grads = make_grad_accumulators(base);
    const double v = loss.compute(base, grads);
    if (value) *value = v;
    return grads;
  }

  double loss_value(const SpikeLoss& loss) {
    std::vector<Tensor> scratch = make_grad_accumulators(base);
    return loss.compute(base, scratch);
  }
};

/// Relaxed activation hinge for one train: silent-at-base neurons contribute
/// 1 - sum_t s~[t]; active neurons are constant 0.
double ref_activation(const std::vector<double>& s, const Tensor& b, size_t T, size_t n,
                      const std::vector<uint8_t>* mask) {
  double v = 0.0;
  for (size_t i = 0; i < n; ++i) {
    if (mask && !(*mask)[i]) continue;
    size_t count = 0;
    for (size_t t = 0; t < T; ++t) count += b.data()[t * n + i] > 0.5f;
    if (count >= 1) continue;
    double acc = 0.0;
    for (size_t t = 0; t < T; ++t) acc += s[t * n + i];
    v += 1.0 - acc;
  }
  return v;
}

int sign_of(float a, float b) {
  const bool sa = a > 0.5f, sb = b > 0.5f;
  if (sa == sb) return 0;
  return sa ? 1 : -1;
}

}  // namespace core_check

TEST(GradCheck, OutputActivationLossL1) {
  using namespace core_check;
  LossFixture fx;
  core::OutputActivationLoss loss;
  const auto grads = fx.analytic(loss);
  auto reference = [&] {
    const size_t last = fx.base.layer_outputs.size() - 1;
    const auto& b = fx.base.layer_outputs[last];
    return ref_activation(fx.relax[last], b, fx.T, b.shape().dim(1), nullptr);
  };
  EXPECT_NEAR(reference(), fx.loss_value(loss), 1e-9);
  for (size_t l = 0; l < fx.relax.size(); ++l) {
    GradCheckStats stats;
    fd_compare(fx.relax[l], grads[l].data(), grads[l].numel(), reference, stats);
    EXPECT_LT(stats.max_rel, kTol) << "layer " << l;
  }
}

TEST(GradCheck, NeuronActivationLossL2WithMask) {
  using namespace core_check;
  LossFixture fx;
  // A mask with holes exercises the target-set path used by the generator.
  core::NeuronMask mask;
  util::Rng rng(606);
  for (const auto& train : fx.base.layer_outputs) {
    std::vector<uint8_t> m(train.shape().dim(1));
    for (auto& bit : m) bit = rng.bernoulli(0.7) ? 1 : 0;
    m[0] = 1;  // keep the guaranteed-silent neuron in the target set
    mask.push_back(std::move(m));
  }
  core::NeuronActivationLoss loss(&mask);
  const auto grads = fx.analytic(loss);
  auto reference = [&] {
    double v = 0.0;
    for (size_t l = 0; l < fx.relax.size(); ++l) {
      const auto& b = fx.base.layer_outputs[l];
      v += ref_activation(fx.relax[l], b, fx.T, b.shape().dim(1), &mask[l]);
    }
    return v;
  };
  EXPECT_NEAR(reference(), fx.loss_value(loss), 1e-9);
  for (size_t l = 0; l < fx.relax.size(); ++l) {
    GradCheckStats stats;
    fd_compare(fx.relax[l], grads[l].data(), grads[l].numel(), reference, stats);
    EXPECT_LT(stats.max_rel, kTol) << "layer " << l;
  }
}

TEST(GradCheck, TemporalDiversityLossL3) {
  using namespace core_check;
  LossFixture fx;
  const size_t td_min = 4;
  core::TemporalDiversityLoss loss(td_min);
  const auto grads = fx.analytic(loss);
  auto reference = [&] {
    double v = 0.0;
    for (size_t l = 0; l < fx.relax.size(); ++l) {
      const auto& b = fx.base.layer_outputs[l];
      const size_t n = b.shape().dim(1);
      for (size_t i = 0; i < n; ++i) {
        size_t td_base = 0;
        for (size_t t = 1; t < fx.T; ++t) {
          td_base += (b.data()[t * n + i] > 0.5f) != (b.data()[(t - 1) * n + i] > 0.5f);
        }
        if (td_base >= td_min) continue;  // frozen branch: no contribution
        // Frozen-sign relaxation of TD = sum_t |s[t] - s[t-1]|.
        double td = 0.0;
        for (size_t t = 1; t < fx.T; ++t) {
          const int sg = sign_of(b.data()[t * n + i], b.data()[(t - 1) * n + i]);
          td += sg * (fx.relax[l][t * n + i] - fx.relax[l][(t - 1) * n + i]);
        }
        v += static_cast<double>(td_min) - td;
      }
    }
    return v;
  };
  EXPECT_NEAR(reference(), fx.loss_value(loss), 1e-9);
  for (size_t l = 0; l < fx.relax.size(); ++l) {
    GradCheckStats stats;
    fd_compare(fx.relax[l], grads[l].data(), grads[l].numel(), reference, stats);
    EXPECT_LT(stats.max_rel, kTol) << "layer " << l;
  }
}

TEST(GradCheck, SynapseUniformityLossL4) {
  using namespace core_check;
  LossFixture fx;
  core::SynapseUniformityLoss loss(fx.net);
  const auto grads = fx.analytic(loss);
  auto reference = [&] {
    // Relaxed counts are real-valued sums, making the row variance genuinely
    // quadratic; the branch structure (w == 0 skips, k < 2 rows) is fixed by
    // the weights, which FD never perturbs.
    double total = 0.0;
    for (size_t l = 1; l < fx.base.layer_outputs.size(); ++l) {
      const size_t m = fx.base.layer_outputs[l - 1].shape().dim(1);
      std::vector<double> counts(m, 0.0);
      for (size_t t = 0; t < fx.T; ++t) {
        for (size_t j = 0; j < m; ++j) counts[j] += fx.relax[l - 1][t * m + j];
      }
      const auto params = fx.net.layer(l).params();
      const float* w = params[0].value;  // feed-forward matrix, rows x m
      const size_t rows = fx.net.layer(l).num_neurons();
      for (size_t r = 0; r < rows; ++r) {
        double sum = 0.0, sum_sq = 0.0;
        size_t k = 0;
        for (size_t j = 0; j < m; ++j) {
          if (w[r * m + j] == 0.0f) continue;
          const double c = static_cast<double>(w[r * m + j]) * counts[j];
          sum += c;
          sum_sq += c * c;
          ++k;
        }
        if (k < 2) continue;
        const double mean = sum / static_cast<double>(k);
        total += std::max(0.0, sum_sq / static_cast<double>(k) - mean * mean);
      }
    }
    return total;
  };
  EXPECT_NEAR(reference(), fx.loss_value(loss), 1e-6);
  for (size_t l = 0; l < fx.relax.size(); ++l) {
    GradCheckStats stats;
    fd_compare(fx.relax[l], grads[l].data(), grads[l].numel(), reference, stats);
    EXPECT_LT(stats.max_rel, kTol) << "layer " << l;
  }
}

TEST(GradCheck, SparsityLossL5) {
  using namespace core_check;
  LossFixture fx;
  core::SparsityLoss loss;
  const auto grads = fx.analytic(loss);
  auto reference = [&] {
    double v = 0.0;
    for (size_t l = 0; l + 1 < fx.relax.size(); ++l) {
      for (const double s : fx.relax[l]) v += s;
    }
    return v;
  };
  EXPECT_NEAR(reference(), fx.loss_value(loss), 1e-9);
  for (size_t l = 0; l < fx.relax.size(); ++l) {
    GradCheckStats stats;
    fd_compare(fx.relax[l], grads[l].data(), grads[l].numel(), reference, stats);
    EXPECT_LT(stats.max_rel, kTol) << "layer " << l;
  }
}

TEST(GradCheck, OutputConstancyPenalty) {
  using namespace core_check;
  LossFixture fx;
  const double mu = 4.0;
  const size_t last = fx.base.layer_outputs.size() - 1;
  // Reference output differing from the base in ~25% of entries, so all three
  // sign branches (+1, -1, match) occur.
  Tensor reference_out = fx.base.layer_outputs[last];
  util::Rng rng(707);
  for (size_t i = 0; i < reference_out.numel(); ++i) {
    if (rng.bernoulli(0.25)) reference_out[i] = reference_out[i] > 0.5f ? 0.0f : 1.0f;
  }
  core::OutputConstancyPenalty loss(reference_out, mu);
  const auto grads = fx.analytic(loss);
  auto reference = [&] {
    const Tensor& b = fx.base.layer_outputs[last];
    double v = 0.0;
    for (size_t i = 0; i < b.numel(); ++i) {
      const float diff = b[i] - reference_out[i];
      if (diff > 0.5f) {
        v += mu * (fx.relax[last][i] - static_cast<double>(reference_out[i]));
      } else if (diff < -0.5f) {
        v += mu * (static_cast<double>(reference_out[i]) - fx.relax[last][i]);
      }
      // matching entries: frozen zero contribution
    }
    return v;
  };
  EXPECT_NEAR(reference(), fx.loss_value(loss), 1e-9);
  for (size_t l = 0; l < fx.relax.size(); ++l) {
    GradCheckStats stats;
    fd_compare(fx.relax[l], grads[l].data(), grads[l].numel(), reference, stats);
    EXPECT_LT(stats.max_rel, kTol) << "layer " << l;
  }
}

TEST(GradCheck, CompositeLossIsWeightedSumOfTerms) {
  using namespace core_check;
  LossFixture fx;
  core::CompositeLoss composite;
  composite.add(std::make_shared<core::OutputActivationLoss>(), 0.5);
  composite.add(std::make_shared<core::SparsityLoss>(), 2.0);
  std::vector<Tensor> grads = core::make_grad_accumulators(fx.base);
  const double base_value = composite.compute(fx.base, grads);
  auto reference = [&] {
    const size_t last = fx.base.layer_outputs.size() - 1;
    const auto& b = fx.base.layer_outputs[last];
    double v = 0.5 * ref_activation(fx.relax[last], b, fx.T, b.shape().dim(1), nullptr);
    for (size_t l = 0; l + 1 < fx.relax.size(); ++l) {
      for (const double s : fx.relax[l]) v += 2.0 * s;
    }
    return v;
  };
  EXPECT_NEAR(reference(), base_value, 1e-9);
  for (size_t l = 0; l < fx.relax.size(); ++l) {
    GradCheckStats stats;
    fd_compare(fx.relax[l], grads[l].data(), grads[l].numel(), reference, stats);
    EXPECT_LT(stats.max_rel, kTol) << "layer " << l;
  }
}

}  // namespace
}  // namespace snntest
