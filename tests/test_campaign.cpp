// Differential campaign-engine tests: golden-cache correctness, bit-identical
// equivalence with an independently-coded naive campaign, prefix-reuse /
// convergence-pruning accounting, detect-only early exit, configurable
// detection threshold, and checkpoint/resume (round-trip, interrupted-run
// equality, fingerprint mismatch rejection, truncated-tail tolerance).
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "campaign/checkpoint.hpp"
#include "campaign/engine.hpp"
#include "campaign/golden_cache.hpp"
#include "campaign/shard.hpp"
#include "fault/coverage.hpp"
#include "fault/registry.hpp"
#include "obs/metrics.hpp"
#include "snn/conv_layer.hpp"
#include "snn/dense_layer.hpp"
#include "snn/lane_network.hpp"
#include "snn/pool_layer.hpp"
#include "snn/recurrent_layer.hpp"
#include "snn/spike_train.hpp"
#include "tensor/simd.hpp"

namespace snntest::campaign {
namespace {

snn::Network make_net(uint64_t seed = 11) {
  util::Rng rng(seed);
  snn::LifParams lif;
  snn::Network net("campaign-test");
  auto l1 = std::make_unique<snn::DenseLayer>(8, 16, lif);
  l1->init_weights(rng, 1.3f);
  net.add_layer(std::move(l1));
  auto l2 = std::make_unique<snn::DenseLayer>(16, 12, lif);
  l2->init_weights(rng, 1.3f);
  net.add_layer(std::move(l2));
  auto l3 = std::make_unique<snn::DenseLayer>(12, 4, lif);
  l3->init_weights(rng, 1.3f);
  net.add_layer(std::move(l3));
  return net;
}

tensor::Tensor busy_input(size_t T = 20, size_t n = 8, uint64_t seed = 5) {
  util::Rng rng(seed);
  return snn::random_spike_train(T, n, 0.5, rng);
}

std::vector<fault::FaultDescriptor> sampled_universe(snn::Network& net, size_t k = 120,
                                                     uint64_t seed = 17) {
  fault::FaultUniverseConfig cfg;
  cfg.neuron_threshold_variation = true;
  cfg.neuron_leak_variation = true;
  cfg.synapse_bitflip = true;
  auto universe = fault::enumerate_faults(net, cfg);
  util::Rng rng(seed);
  return fault::sample_faults(universe, k, rng);
}

/// Independent naive reference: full forward for every fault, coded without
/// any of the engine's shortcuts so the equivalence test is meaningful.
std::vector<fault::DetectionResult> naive_reference(const snn::Network& net,
                                                    const tensor::Tensor& stimulus,
                                                    const std::vector<fault::FaultDescriptor>& faults,
                                                    double threshold = 0.0) {
  snn::Network golden_net(net);
  const auto golden = golden_net.forward(stimulus);
  const auto golden_counts = golden.output_counts();
  const auto stats = fault::compute_weight_stats(golden_net);
  snn::Network worker(net);
  fault::FaultInjector injector(worker, stats);
  std::vector<fault::DetectionResult> results(faults.size());
  for (size_t j = 0; j < faults.size(); ++j) {
    fault::ScopedFault scoped(injector, faults[j]);
    const auto faulty = worker.forward(stimulus);
    auto& r = results[j];
    r.output_l1 = snn::output_distance(golden.output(), faulty.output());
    r.detected = r.output_l1 > threshold;
    // First frame whose cumulative output L1 exceeds the threshold, walked
    // independently of the engine's accumulation loop.
    r.first_detection_frame = -1;
    {
      const auto& g = golden.output();
      const auto& f = faulty.output();
      const size_t T = g.shape().dim(0);
      const size_t C = g.shape().dim(1);
      double acc = 0.0;
      for (size_t t = 0; t < T && r.first_detection_frame < 0; ++t) {
        for (size_t c = 0; c < C; ++c) {
          acc += std::abs(static_cast<double>(g[t * C + c]) - static_cast<double>(f[t * C + c]));
        }
        if (acc > threshold) r.first_detection_frame = static_cast<int64_t>(t);
      }
    }
    const auto counts = faulty.output_counts();
    r.class_count_diff.resize(counts.size());
    for (size_t c = 0; c < counts.size(); ++c) {
      r.class_count_diff[c] = static_cast<long>(counts[c]) - static_cast<long>(golden_counts[c]);
    }
  }
  return results;
}

void expect_results_identical(const std::vector<fault::DetectionResult>& a,
                              const std::vector<fault::DetectionResult>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t j = 0; j < a.size(); ++j) {
    EXPECT_EQ(a[j].detected, b[j].detected) << "fault " << j;
    EXPECT_EQ(a[j].output_l1, b[j].output_l1) << "fault " << j;
    EXPECT_EQ(a[j].first_detection_frame, b[j].first_detection_frame) << "fault " << j;
    ASSERT_EQ(a[j].class_count_diff, b[j].class_count_diff) << "fault " << j;
  }
}

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

TEST(FaultLayer, ResolvesPerTargetKind) {
  fault::FaultDescriptor f;
  f.kind = fault::FaultKind::kNeuronDead;
  f.neuron = {2, 0};
  EXPECT_EQ(fault_layer(f), 2u);
  f.kind = fault::FaultKind::kSynapseDead;
  f.weight = {1, 0, 3};
  EXPECT_EQ(fault_layer(f), 1u);
  f.connection_granularity = true;
  f.connection = {0, 4, 7};
  EXPECT_EQ(fault_layer(f), 0u);
}

TEST(GoldenCache, MatchesDirectForward) {
  auto net = make_net();
  const auto input = busy_input();
  const auto cache = build_golden_cache(net, input);
  snn::Network clone(net);
  const auto direct = clone.forward(input);
  ASSERT_EQ(cache.num_layers(), direct.num_layers());
  for (size_t l = 0; l < direct.num_layers(); ++l) {
    const auto& a = cache.layer_output(l);
    const auto& b = direct.layer_outputs[l];
    ASSERT_EQ(a.numel(), b.numel());
    for (size_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]) << "layer " << l;
  }
  EXPECT_EQ(cache.output_counts, direct.output_counts());
  EXPECT_NE(cache.fingerprint, 0u);
  // Fingerprint is sensitive to the stimulus.
  const auto other = build_golden_cache(net, busy_input(20, 8, 99));
  EXPECT_NE(cache.fingerprint, other.fingerprint);
}

TEST(Engine, BitIdenticalToNaiveReference) {
  auto net = make_net();
  const auto input = busy_input();
  const auto faults = sampled_universe(net);
  const auto naive = naive_reference(net, input, faults);

  for (const size_t threads : {size_t{1}, size_t{4}}) {
    EngineConfig cfg;
    cfg.num_threads = threads;
    cfg.grain = 3;
    const auto result = run_campaign(net, input, faults, cfg);
    EXPECT_TRUE(result.completed);
    EXPECT_EQ(result.stats.faults_simulated, faults.size());
    expect_results_identical(result.results, naive);
  }
}

TEST(Engine, BitIdenticalWithAllShortcutsDisabled) {
  auto net = make_net();
  const auto input = busy_input();
  const auto faults = sampled_universe(net, 60);
  const auto naive = naive_reference(net, input, faults);
  EngineConfig cfg;
  cfg.prefix_reuse = false;
  cfg.convergence_pruning = false;
  const auto result = run_campaign(net, input, faults, cfg);
  expect_results_identical(result.results, naive);
  // Without shortcuts every fault runs every layer.
  EXPECT_EQ(result.stats.layer_forwards, result.stats.layer_forwards_naive);
}

TEST(Engine, PrefixReuseSkipsEarlyLayers) {
  auto net = make_net();
  const auto input = busy_input();
  // Faults confined to the last layer: only 1 of 3 layers must run.
  std::vector<fault::FaultDescriptor> faults;
  for (size_t i = 0; i < net.layer(2).num_neurons(); ++i) {
    fault::FaultDescriptor f;
    f.kind = fault::FaultKind::kNeuronSaturated;
    f.neuron = {2, i};
    faults.push_back(f);
  }
  const auto naive = naive_reference(net, input, faults);
  const auto result = run_campaign(net, input, faults, {});
  expect_results_identical(result.results, naive);
  EXPECT_EQ(result.stats.layer_forwards, faults.size());
  EXPECT_EQ(result.stats.layer_forwards_naive, faults.size() * net.num_layers());
  EXPECT_GE(result.stats.forward_savings(), 2.0 / 3.0 - 1e-9);
}

TEST(Engine, ConvergencePruningStopsInvisibleFaults) {
  auto net = make_net();
  // A dead neuron fed by a silent stimulus never diverges from golden:
  // pruning must decide "undetected" after layer 0 alone.
  const auto zero = snn::zero_train(16, 8);
  std::vector<fault::FaultDescriptor> faults(1);
  faults[0].kind = fault::FaultKind::kNeuronDead;
  faults[0].neuron = {0, 0};
  const auto naive = naive_reference(net, zero, faults);
  const auto result = run_campaign(net, zero, faults, {});
  expect_results_identical(result.results, naive);
  EXPECT_FALSE(result.results[0].detected);
  EXPECT_EQ(result.stats.faults_pruned, 1u);
  EXPECT_EQ(result.stats.layer_forwards, 1u);
  // The naive result fills zero class diffs; pruning must do the same.
  EXPECT_EQ(result.results[0].class_count_diff, std::vector<long>(net.output_size(), 0));
}

TEST(Engine, DetectOnlyAgreesOnDetection) {
  auto net = make_net();
  const auto input = busy_input();
  const auto faults = sampled_universe(net, 80);
  const auto full = run_campaign(net, input, faults, {});
  EngineConfig cfg;
  cfg.detect_only = true;
  const auto fast = run_campaign(net, input, faults, cfg);
  ASSERT_EQ(full.results.size(), fast.results.size());
  for (size_t j = 0; j < faults.size(); ++j) {
    EXPECT_EQ(full.results[j].detected, fast.results[j].detected) << "fault " << j;
    // Lower bound: never exceeds the exact L1, positive iff detected.
    EXPECT_LE(fast.results[j].output_l1, full.results[j].output_l1);
    EXPECT_TRUE(fast.results[j].class_count_diff.empty());
  }
}

TEST(Engine, DetectionThresholdRespected) {
  auto net = make_net();
  const auto input = busy_input();
  const auto faults = sampled_universe(net, 40);
  EngineConfig cfg;
  cfg.detection_threshold = 1e9;
  const auto result = run_campaign(net, input, faults, cfg);
  EXPECT_EQ(result.detected_count(), 0u);

  // The legacy API forwards its threshold to the engine.
  fault::CampaignConfig legacy;
  legacy.detection_threshold = 1e9;
  const auto outcome = fault::run_detection_campaign(net, input, faults, legacy);
  EXPECT_EQ(outcome.detected_count(), 0u);
}

TEST(Checkpoint, RoundTripIsExact) {
  const std::string path = temp_path("ck_roundtrip.jsonl");
  CheckpointHeader header;
  header.fingerprint = 0xdeadbeef12345678ull;
  header.num_faults = 10;
  header.threshold = 0.1 + 0.2;  // not exactly representable: exercises %.17g
  {
    CheckpointWriter writer(path, header, /*append=*/false, /*flush_every=*/1);
    fault::DetectionResult r;
    r.detected = true;
    r.output_l1 = 1.0 / 3.0;
    r.class_count_diff = {3, 0, -7};
    writer.record(4, r);
    r.detected = false;
    r.output_l1 = 0.0;
    r.class_count_diff = {};
    writer.record(9, r);
  }
  const auto data = load_checkpoint(path);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->header.fingerprint, header.fingerprint);
  EXPECT_EQ(data->header.num_faults, header.num_faults);
  EXPECT_EQ(data->header.threshold, header.threshold);
  ASSERT_EQ(data->results.size(), 2u);
  EXPECT_EQ(data->results[0].first, 4u);
  EXPECT_TRUE(data->results[0].second.detected);
  EXPECT_EQ(data->results[0].second.output_l1, 1.0 / 3.0);
  EXPECT_EQ(data->results[0].second.class_count_diff, (std::vector<long>{3, 0, -7}));
  EXPECT_EQ(data->results[1].first, 9u);
  EXPECT_FALSE(data->results[1].second.detected);
  EXPECT_TRUE(data->results[1].second.class_count_diff.empty());
  std::remove(path.c_str());
}

TEST(Checkpoint, MissingFileIsNullopt) {
  EXPECT_FALSE(load_checkpoint(temp_path("ck_does_not_exist.jsonl")).has_value());
}

TEST(Checkpoint, InterruptedRunResumesToIdenticalOutcome) {
  auto net = make_net();
  const auto input = busy_input();
  const auto faults = sampled_universe(net, 90);
  const std::string path = temp_path("ck_resume.jsonl");
  std::remove(path.c_str());

  const auto uninterrupted = run_campaign(net, input, faults, {});

  // First run: cancel after ~a third of the faults have been claimed.
  std::atomic<long> budget{static_cast<long>(faults.size() / 3)};
  EngineConfig cfg;
  cfg.num_threads = 2;
  cfg.grain = 2;
  // Cancellation is polled once per work item; run this leg scalar so the
  // poll budget counts faults. The resume leg below keeps the default lane
  // batching, so the joined results also cross-check lane vs scalar.
  cfg.lane_width = 1;
  cfg.checkpoint_path = path;
  cfg.checkpoint_flush_every = 1;
  cfg.cancel = [&budget] { return budget.fetch_sub(1) <= 0; };
  const auto partial = run_campaign(net, input, faults, cfg);
  EXPECT_FALSE(partial.completed);
  EXPECT_LT(partial.stats.faults_simulated, faults.size());
  EXPECT_GT(partial.stats.faults_simulated, 0u);

  // Second run: same inputs, no cancel — must pick up the checkpoint.
  EngineConfig resume_cfg;
  resume_cfg.checkpoint_path = path;
  const auto resumed = run_campaign(net, input, faults, resume_cfg);
  EXPECT_TRUE(resumed.completed);
  EXPECT_EQ(resumed.stats.faults_resumed, partial.stats.faults_simulated);
  EXPECT_EQ(resumed.stats.faults_simulated + resumed.stats.faults_resumed, faults.size());
  expect_results_identical(resumed.results, uninterrupted.results);

  // The joined results yield the same coverage report as the clean run.
  std::vector<fault::FaultClassification> labels(faults.size());
  for (size_t j = 0; j < labels.size(); ++j) labels[j].critical = j % 2 == 0;
  const auto report_a = fault::build_coverage_report(faults, uninterrupted.results, labels);
  const auto report_b = fault::build_coverage_report(faults, resumed.results, labels);
  EXPECT_EQ(report_a.to_string(), report_b.to_string());
  std::remove(path.c_str());
}

TEST(Checkpoint, MismatchedFingerprintThrows) {
  auto net = make_net();
  const auto faults = sampled_universe(net, 10);
  const std::string path = temp_path("ck_mismatch.jsonl");
  std::remove(path.c_str());
  EngineConfig cfg;
  cfg.checkpoint_path = path;
  run_campaign(net, busy_input(20, 8, 5), faults, cfg);
  // Different stimulus => different fingerprint => loud rejection.
  EXPECT_THROW(run_campaign(net, busy_input(20, 8, 6), faults, cfg), std::runtime_error);
  std::remove(path.c_str());
}

TEST(Checkpoint, TruncatedTrailingLineIsTolerated) {
  auto net = make_net();
  const auto input = busy_input();
  const auto faults = sampled_universe(net, 20);
  const std::string path = temp_path("ck_truncated.jsonl");
  std::remove(path.c_str());
  EngineConfig cfg;
  cfg.checkpoint_path = path;
  const auto clean = run_campaign(net, input, faults, cfg);

  // Simulate a kill mid-write: chop the file in the middle of the last line.
  std::stringstream buffer;
  {
    std::ifstream in(path);
    buffer << in.rdbuf();
  }
  std::string contents = buffer.str();
  contents.resize(contents.size() - 12);
  {
    std::ofstream out(path, std::ios::trunc);
    out << contents;
  }
  const auto ck = load_checkpoint(path);
  ASSERT_TRUE(ck.has_value());
  EXPECT_LT(ck->results.size(), faults.size());

  const auto resumed = run_campaign(net, input, faults, cfg);
  EXPECT_TRUE(resumed.completed);
  EXPECT_EQ(resumed.stats.faults_simulated, 1u);  // only the chopped fault reruns
  EXPECT_EQ(resumed.stats.checkpoint_lines_skipped, 1u);  // ...and it is reported
  expect_results_identical(resumed.results, clean.results);
  std::remove(path.c_str());
}

TEST(Checkpoint, WorstCaseWidthRoundTrips) {
  // Regression: record() used a 96-byte buffer, but the fixed JSON text plus
  // a 20-digit %zu index and a 24-char %.17g l1 needs 98 bytes including the
  // terminator — snprintf truncated such lines silently and load_checkpoint
  // dropped them on resume, so the fault was re-simulated every restart.
  const std::string path = temp_path("ck_width.jsonl");
  CheckpointHeader header;
  header.fingerprint = 0xffffffffffffffffull;
  header.num_faults = std::numeric_limits<size_t>::max();
  header.threshold = -1.7976931348623157e+308;
  const size_t huge_index = std::numeric_limits<size_t>::max() - 1;
  const double extreme_l1 = -2.2250738585072014e-308;  // sign + 17 digits + "e-308"
  {
    CheckpointWriter writer(path, header, /*append=*/false, /*flush_every=*/1);
    fault::DetectionResult r;
    r.detected = true;
    r.output_l1 = extreme_l1;
    r.class_count_diff = {-123456789, 987654321};
    writer.record(huge_index, r);
  }
  const auto data = load_checkpoint(path);
  ASSERT_TRUE(data.has_value());
  EXPECT_EQ(data->header.num_faults, header.num_faults);
  EXPECT_EQ(data->header.threshold, header.threshold);
  EXPECT_EQ(data->skipped_lines, 0u);
  ASSERT_EQ(data->results.size(), 1u);
  EXPECT_EQ(data->results[0].first, huge_index);
  EXPECT_TRUE(data->results[0].second.detected);
  EXPECT_EQ(data->results[0].second.output_l1, extreme_l1);
  EXPECT_EQ(data->results[0].second.class_count_diff,
            (std::vector<long>{-123456789, 987654321}));
  std::remove(path.c_str());
}

TEST(Checkpoint, CorruptedLinesAreCountedNotSwallowed) {
  auto net = make_net();
  const auto input = busy_input();
  const auto faults = sampled_universe(net, 24);
  const std::string path = temp_path("ck_corrupt.jsonl");
  std::remove(path.c_str());
  EngineConfig cfg;
  cfg.checkpoint_path = path;
  const auto clean = run_campaign(net, input, faults, cfg);

  // Hand-corrupt the checkpoint: a garbage line, a result whose index is
  // outside the fault list, and a partial write without the closing brace.
  {
    std::ofstream out(path, std::ios::app);
    out << "@@ not json at all @@\n";
    out << "{\"type\":\"result\",\"index\":999999,\"detected\":1,\"l1\":1,\"diff\":[]}\n";
    out << "{\"type\":\"result\",\"index\":3,\"detected\":1,\"l1\":4\n";
  }
  const auto ck = load_checkpoint(path);
  ASSERT_TRUE(ck.has_value());
  EXPECT_EQ(ck->skipped_lines, 3u);
  EXPECT_EQ(ck->results.size(), faults.size());

  const auto resumed = run_campaign(net, input, faults, cfg);
  EXPECT_TRUE(resumed.completed);
  EXPECT_EQ(resumed.stats.checkpoint_lines_skipped, 3u);
  EXPECT_EQ(resumed.stats.faults_resumed, faults.size());
  expect_results_identical(resumed.results, clean.results);
  std::remove(path.c_str());
}

/// Randomized conv+dense stack: the sparse conv and dense kernels must give
/// the exact naive-dense campaign results at every thread count, fault or no
/// fault (the golden pass runs under the same mode as the workers).
snn::Network make_mixed_net(uint64_t seed = 21) {
  util::Rng rng(seed);
  snn::LifParams lif;
  snn::Network net("campaign-mixed");
  snn::Conv2dSpec spec;
  spec.in_channels = 1;
  spec.in_height = 8;
  spec.in_width = 8;
  spec.out_channels = 3;
  spec.kernel = 3;
  spec.stride = 1;
  spec.padding = 1;
  auto conv = std::make_unique<snn::ConvLayer>(spec, lif);
  conv->init_weights(rng, 1.3f);
  net.add_layer(std::move(conv));
  auto fc = std::make_unique<snn::DenseLayer>(spec.output_size(), 6, lif);
  fc->init_weights(rng, 1.3f);
  net.add_layer(std::move(fc));
  return net;
}

TEST(Engine, KernelModesBitIdenticalWithFaultsAcrossThreads) {
  auto net = make_mixed_net();
  util::Rng rng(91);
  const auto input = snn::random_spike_train(16, net.input_size(), 0.08, rng);
  const auto faults = sampled_universe(net, 80, 92);
  ASSERT_FALSE(faults.empty());
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    EngineConfig dense_cfg;
    dense_cfg.num_threads = threads;
    dense_cfg.kernel_mode = snn::KernelMode::kDense;
    EngineConfig sparse_cfg;
    sparse_cfg.num_threads = threads;
    sparse_cfg.kernel_mode = snn::KernelMode::kSparse;
    EngineConfig auto_cfg;  // default kernel_mode == kAuto
    auto_cfg.num_threads = threads;
    const auto dense = run_campaign(net, input, faults, dense_cfg);
    const auto sparse = run_campaign(net, input, faults, sparse_cfg);
    const auto adaptive = run_campaign(net, input, faults, auto_cfg);
    expect_results_identical(dense.results, sparse.results);
    expect_results_identical(dense.results, adaptive.results);
    // Fault-free reference: the golden caches of all modes agree bit-exactly.
    const auto golden_dense = build_golden_cache(net, input, snn::KernelMode::kDense);
    const auto golden_sparse = build_golden_cache(net, input, snn::KernelMode::kSparse);
    for (size_t l = 0; l < golden_dense.num_layers(); ++l) {
      const auto& a = golden_dense.layer_output(l);
      const auto& b = golden_sparse.layer_output(l);
      ASSERT_EQ(a.shape(), b.shape());
      for (size_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]) << "layer " << l;
    }
  }
}

TEST(Checkpoint, RandomizedCorruptionFuzzKeepsExactAccounting) {
  // Property fuzz over the JSONL reader: a random mix of valid records,
  // garbage lines, out-of-range fault indices and truncated partial writes
  // must load with (a) every valid record recovered bit-exactly, in order,
  // and (b) skipped_lines equal to exactly the number of unusable lines —
  // never silently more (swallowed data) or fewer (phantom results).
  for (const uint64_t seed : {11ull, 22ull, 33ull, 44ull, 55ull, 66ull}) {
    util::Rng rng(seed);
    const std::string path = temp_path("ck_fuzz_" + std::to_string(seed) + ".jsonl");
    std::remove(path.c_str());

    CheckpointHeader header;
    header.fingerprint = rng.next();
    header.num_faults = 40;
    header.threshold = rng.uniform(0.0, 2.0);

    std::vector<std::pair<size_t, fault::DetectionResult>> written;
    {
      CheckpointWriter writer(path, header, /*append=*/false, /*flush_every=*/1);
      const size_t n_valid = 1 + rng.uniform_index(24);
      for (size_t k = 0; k < n_valid; ++k) {
        fault::DetectionResult r;
        r.detected = rng.bernoulli(0.5);
        r.output_l1 = rng.uniform(0.0, 100.0);
        r.class_count_diff.resize(rng.uniform_index(5));
        for (auto& d : r.class_count_diff) d = rng.uniform_int(-9, 9);
        const size_t index = rng.uniform_index(header.num_faults);
        writer.record(index, r);
        written.emplace_back(index, std::move(r));
      }
    }

    size_t bad_lines = 0;
    {
      std::ofstream out(path, std::ios::app);
      const size_t n_bad = 1 + rng.uniform_index(8);
      for (size_t k = 0; k < n_bad; ++k) {
        switch (rng.uniform_index(4)) {
          case 0:  // plain garbage
            out << "@@ fuzz garbage " << rng.next() << " @@\n";
            break;
          case 1:  // well-formed JSON, index outside header.num_faults
            out << "{\"type\":\"result\",\"index\":" << header.num_faults + rng.uniform_index(100)
                << ",\"detected\":1,\"l1\":1,\"diff\":[]}\n";
            break;
          case 2:  // partial write: line chopped before the closing brace
            out << "{\"type\":\"result\",\"index\":3,\"detected\":1,\"l1\":4\n";
            break;
          default:  // unknown record type
            out << "{\"type\":\"mystery\",\"index\":1}\n";
            break;
        }
        ++bad_lines;
      }
    }

    const auto data = load_checkpoint(path);
    ASSERT_TRUE(data.has_value()) << "seed " << seed;
    EXPECT_EQ(data->header.fingerprint, header.fingerprint) << "seed " << seed;
    EXPECT_EQ(data->header.threshold, header.threshold) << "seed " << seed;
    EXPECT_EQ(data->skipped_lines, bad_lines) << "seed " << seed;
    ASSERT_EQ(data->results.size(), written.size()) << "seed " << seed;
    for (size_t k = 0; k < written.size(); ++k) {
      EXPECT_EQ(data->results[k].first, written[k].first) << "seed " << seed << " record " << k;
      EXPECT_EQ(data->results[k].second.detected, written[k].second.detected);
      // %.17g round-trips doubles exactly
      EXPECT_EQ(data->results[k].second.output_l1, written[k].second.output_l1);
      EXPECT_EQ(data->results[k].second.class_count_diff, written[k].second.class_count_diff);
    }
    std::remove(path.c_str());
  }
}

TEST(Checkpoint, FuzzTruncationAtEveryByteBoundaryNeverCrashes) {
  // Chop a small valid checkpoint at every possible byte length: the loader
  // must never crash or throw, and whenever the header line survives intact
  // it must return data with consistent accounting (parsed + skipped lines
  // covering everything after the header).
  const std::string path = temp_path("ck_chop.jsonl");
  CheckpointHeader header;
  header.fingerprint = 0x1234abcdull;
  header.num_faults = 8;
  {
    CheckpointWriter writer(path, header, /*append=*/false, /*flush_every=*/1);
    for (size_t k = 0; k < 4; ++k) {
      fault::DetectionResult r;
      r.detected = k % 2 == 0;
      r.output_l1 = static_cast<double>(k) / 3.0;
      r.class_count_diff = {static_cast<long>(k), -1};
      writer.record(k, r);
    }
  }
  std::string full;
  {
    std::ifstream in(path, std::ios::binary);
    std::stringstream buffer;
    buffer << in.rdbuf();
    full = buffer.str();
  }
  const size_t header_end = full.find('\n');
  ASSERT_NE(header_end, std::string::npos);
  for (size_t len = 0; len <= full.size(); ++len) {
    {
      std::ofstream out(path, std::ios::binary | std::ios::trunc);
      out.write(full.data(), static_cast<std::streamsize>(len));
    }
    const auto data = load_checkpoint(path);
    if (len <= header_end) {
      // A chopped header may or may not scrape through the field scanners
      // (strtod happily parses a prefix); the contract here is only "no
      // crash, no phantom results".
      if (data.has_value()) EXPECT_TRUE(data->results.empty()) << "len " << len;
      continue;
    }
    ASSERT_TRUE(data.has_value()) << "len " << len;
    EXPECT_EQ(data->header.fingerprint, header.fingerprint) << "len " << len;
    EXPECT_LE(data->results.size(), 4u) << "len " << len;
    EXPECT_LE(data->skipped_lines, 1u) << "len " << len;  // at most the chopped tail
  }
  std::remove(path.c_str());
}

// ---- Lane-batched simulation (W faults per forward pass, DESIGN.md §12) ---

snn::Network make_conv_pool_net(uint64_t seed = 41) {
  util::Rng rng(seed);
  snn::LifParams lif;
  snn::Network net("campaign-conv-pool");
  snn::Conv2dSpec spec;
  spec.in_channels = 1;
  spec.in_height = 8;
  spec.in_width = 8;
  spec.out_channels = 4;
  spec.kernel = 3;
  spec.stride = 1;
  spec.padding = 1;
  auto conv = std::make_unique<snn::ConvLayer>(spec, lif);
  conv->init_weights(rng, 1.3f);
  net.add_layer(std::move(conv));
  snn::SumPoolSpec pool;
  pool.channels = 4;
  pool.in_height = 8;
  pool.in_width = 8;
  pool.window = 2;
  net.add_layer(std::make_unique<snn::SumPoolLayer>(pool, lif));
  auto fc = std::make_unique<snn::DenseLayer>(pool.output_size(), 6, lif);
  fc->init_weights(rng, 1.3f);
  net.add_layer(std::move(fc));
  return net;
}

snn::Network make_recurrent_net(uint64_t seed = 31) {
  util::Rng rng(seed);
  snn::LifParams lif;
  snn::Network net("campaign-recurrent");
  auto l1 = std::make_unique<snn::DenseLayer>(10, 14, lif);
  l1->init_weights(rng, 1.3f);
  net.add_layer(std::move(l1));
  auto rec = std::make_unique<snn::RecurrentLayer>(14, 12, lif);
  rec->init_weights(rng, 1.2f, 0.5f);
  net.add_layer(std::move(rec));
  auto l3 = std::make_unique<snn::DenseLayer>(12, 5, lif);
  l3->init_weights(rng, 1.3f);
  net.add_layer(std::move(l3));
  return net;
}

/// Sample from a universe with EVERY fault kind enabled — structural,
/// parametric, bit-flips — so the lane fault resolver is exercised against
/// each injector branch.
std::vector<fault::FaultDescriptor> all_kinds_universe(snn::Network& net, size_t k, uint64_t seed,
                                                       bool conv_connections = false) {
  fault::FaultUniverseConfig cfg;
  cfg.neuron_threshold_variation = true;
  cfg.neuron_leak_variation = true;
  cfg.neuron_refractory_variation = true;
  cfg.synapse_bitflip = true;
  cfg.conv_connection_granularity = conv_connections;
  auto universe = fault::enumerate_faults(net, cfg);
  util::Rng rng(seed);
  return fault::sample_faults(universe, k, rng);
}

TEST(LaneBatch, FuzzMatrixBitIdenticalToScalar) {
  // Property matrix: random fault populations (all kinds, mixed layers) on
  // three architectures, every lane width x kernel mode x telemetry state.
  // Each configuration must reproduce the scalar (lane_width=1) engine's
  // DetectionResults bit-for-bit — detected flags, output_l1 doubles and
  // class count diffs — plus identical pruning/forward accounting, in both
  // full and detect-only modes.
  struct Case {
    std::string name;
    snn::Network net;
    tensor::Tensor input;
    std::vector<fault::FaultDescriptor> faults;
  };
  std::vector<Case> cases;
  {
    auto net = make_net();
    auto input = busy_input(14, 8, 71);
    auto faults = all_kinds_universe(net, 48, 72);
    cases.push_back({"dense-mlp", std::move(net), std::move(input), std::move(faults)});
  }
  {
    auto net = make_conv_pool_net();
    util::Rng rng(73);
    auto input = snn::random_spike_train(12, net.input_size(), 0.12, rng);
    auto faults = all_kinds_universe(net, 48, 74, /*conv_connections=*/true);
    cases.push_back({"conv-pool-dense", std::move(net), std::move(input), std::move(faults)});
  }
  {
    auto net = make_recurrent_net();
    util::Rng rng(75);
    auto input = snn::random_spike_train(16, net.input_size(), 0.4, rng);
    auto faults = all_kinds_universe(net, 48, 76);
    cases.push_back({"recurrent", std::move(net), std::move(input), std::move(faults)});
  }

  const bool telemetry_before = obs::telemetry_enabled();
  for (auto& c : cases) {
    ASSERT_FALSE(c.faults.empty()) << c.name;
    EngineConfig scalar_cfg;
    scalar_cfg.lane_width = 1;
    const auto scalar = run_campaign(c.net, c.input, c.faults, scalar_cfg);
    EXPECT_EQ(scalar.stats.lane_batches, 0u) << c.name;
    EngineConfig scalar_detect = scalar_cfg;
    scalar_detect.detect_only = true;
    const auto scalar_fast = run_campaign(c.net, c.input, c.faults, scalar_detect);

    for (const size_t width : {size_t{2}, size_t{3}, size_t{8}}) {
      for (const auto mode :
           {snn::KernelMode::kDense, snn::KernelMode::kSparse, snn::KernelMode::kAuto}) {
        for (const bool telemetry : {false, true}) {
          SCOPED_TRACE(c.name + " width=" + std::to_string(width) + " mode=" +
                       std::to_string(static_cast<int>(mode)) +
                       (telemetry ? " telemetry" : ""));
          obs::set_telemetry_enabled(telemetry);
          EngineConfig cfg;
          cfg.lane_width = width;
          cfg.kernel_mode = mode;
          const auto lane = run_campaign(c.net, c.input, c.faults, cfg);
          EngineConfig dcfg = cfg;
          dcfg.detect_only = true;
          const auto lane_fast = run_campaign(c.net, c.input, c.faults, dcfg);
          obs::set_telemetry_enabled(telemetry_before);

          expect_results_identical(lane.results, scalar.results);
          EXPECT_EQ(lane.detected_count(), scalar.detected_count());
          // Retirement fires at the same layers as scalar pruning, so the
          // forward accounting must agree exactly too.
          EXPECT_EQ(lane.stats.faults_pruned, scalar.stats.faults_pruned);
          EXPECT_EQ(lane.stats.layer_forwards, scalar.stats.layer_forwards);
          EXPECT_GT(lane.stats.lane_batched_faults, 0u);
          EXPECT_GT(lane.stats.lane_batches, 0u);

          // Detect-only: scalar and lane paths check the accumulated L1
          // after each full frame, so even the lower-bound L1 is bitwise
          // reproducible across widths.
          expect_results_identical(lane_fast.results, scalar_fast.results);
          EXPECT_EQ(lane_fast.detected_count(), scalar_fast.detected_count());
        }
      }
    }
  }
}

TEST(LaneBatch, CheckpointResumeAcrossLaneWidths) {
  // The checkpoint fingerprint deliberately excludes lane_width: a campaign
  // interrupted mid-run at width 8 must resume at width 3 (regrouping the
  // pending faults into fresh batches that do not align with the old batch
  // boundaries) and still join to the scalar ground truth bit-exactly.
  auto net = make_net();
  const auto input = busy_input();
  const auto faults = sampled_universe(net, 96, 63);
  EngineConfig scalar_cfg;
  scalar_cfg.lane_width = 1;
  const auto truth = run_campaign(net, input, faults, scalar_cfg);

  const std::string path = temp_path("ck_lane_resume.jsonl");
  std::remove(path.c_str());
  std::atomic<long> budget{4};
  EngineConfig cfg;
  cfg.lane_width = 8;
  cfg.num_threads = 2;
  cfg.checkpoint_path = path;
  cfg.checkpoint_flush_every = 1;
  cfg.cancel = [&budget] { return budget.fetch_sub(1) <= 0; };
  const auto partial = run_campaign(net, input, faults, cfg);
  EXPECT_FALSE(partial.completed);
  EXPECT_GT(partial.stats.faults_simulated, 0u);
  EXPECT_LT(partial.stats.faults_simulated, faults.size());

  EngineConfig resume_cfg;
  resume_cfg.lane_width = 3;
  resume_cfg.checkpoint_path = path;
  const auto resumed = run_campaign(net, input, faults, resume_cfg);
  EXPECT_TRUE(resumed.completed);
  EXPECT_EQ(resumed.stats.faults_resumed, partial.stats.faults_simulated);
  EXPECT_EQ(resumed.stats.faults_simulated + resumed.stats.faults_resumed, faults.size());
  expect_results_identical(resumed.results, truth.results);
  std::remove(path.c_str());
}

TEST(LaneBatch, BackendForcedBitIdenticalAcrossWidths) {
  // The SIMD dispatch axis of the fuzz matrix: every backend available on
  // this host (tensor/simd.hpp) must reproduce the scalar-backend width-1
  // campaign bit for bit at every lane width — including widths that are
  // not a multiple of any vector width (6), so the tail paths run — in both
  // kernel modes and in full + detect-only runs. On hosts with no SIMD
  // backend this degenerates to a scalar self-check.
  namespace simd = tensor::simd;
  const simd::Backend prior = simd::active_backend();
  struct Case {
    std::string name;
    snn::Network net;
    tensor::Tensor input;
    std::vector<fault::FaultDescriptor> faults;
  };
  std::vector<Case> cases;
  {
    auto net = make_net();
    auto input = busy_input(14, 8, 81);
    auto faults = all_kinds_universe(net, 32, 82);
    cases.push_back({"dense-mlp", std::move(net), std::move(input), std::move(faults)});
  }
  {
    auto net = make_conv_pool_net();
    util::Rng rng(83);
    auto input = snn::random_spike_train(10, net.input_size(), 0.12, rng);
    auto faults = all_kinds_universe(net, 32, 84, /*conv_connections=*/true);
    cases.push_back({"conv-pool-dense", std::move(net), std::move(input), std::move(faults)});
  }

  for (auto& c : cases) {
    ASSERT_TRUE(simd::force_backend(simd::Backend::kScalar));
    EngineConfig scalar_cfg;
    scalar_cfg.lane_width = 1;
    const auto scalar = run_campaign(c.net, c.input, c.faults, scalar_cfg);
    EngineConfig scalar_detect = scalar_cfg;
    scalar_detect.detect_only = true;
    const auto scalar_fast = run_campaign(c.net, c.input, c.faults, scalar_detect);

    for (const simd::Backend backend : simd::available_backends()) {
      ASSERT_TRUE(simd::force_backend(backend));
      for (const size_t width : {size_t{1}, size_t{2}, size_t{4}, size_t{6}, size_t{8},
                                 size_t{16}}) {
        for (const auto mode : {snn::KernelMode::kDense, snn::KernelMode::kSparse}) {
          SCOPED_TRACE(c.name + " backend=" + simd::backend_name(backend) +
                       " width=" + std::to_string(width) + " mode=" +
                       std::to_string(static_cast<int>(mode)));
          EngineConfig cfg;
          cfg.lane_width = width;
          cfg.kernel_mode = mode;
          const auto lane = run_campaign(c.net, c.input, c.faults, cfg);
          expect_results_identical(lane.results, scalar.results);
          EXPECT_EQ(lane.stats.faults_pruned, scalar.stats.faults_pruned);
          EXPECT_EQ(lane.stats.layer_forwards, scalar.stats.layer_forwards);

          EngineConfig dcfg = cfg;
          dcfg.detect_only = true;
          const auto lane_fast = run_campaign(c.net, c.input, c.faults, dcfg);
          expect_results_identical(lane_fast.results, scalar_fast.results);
        }
      }
    }
  }
  simd::force_backend(prior);
}

TEST(Engine, OutOfRangeLaneWidthClampedAndSurfacedInStats) {
  // lane_width outside [1, kMaxLaneWidth] is clamped (with a one-time
  // warning) rather than silently misbehaving; the effective width is
  // surfaced in EngineStats and the results still match the scalar truth.
  auto net = make_net();
  const auto input = busy_input();
  const auto faults = sampled_universe(net, 24, 91);
  EngineConfig scalar_cfg;
  scalar_cfg.lane_width = 1;
  const auto truth = run_campaign(net, input, faults, scalar_cfg);
  EXPECT_EQ(truth.stats.lane_width_effective, 1u);

  EngineConfig wide_cfg;
  wide_cfg.lane_width = 10 * snn::kMaxLaneWidth;
  const auto wide = run_campaign(net, input, faults, wide_cfg);
  EXPECT_EQ(wide.stats.lane_width_effective, snn::kMaxLaneWidth);
  expect_results_identical(wide.results, truth.results);

  EngineConfig zero_cfg;
  zero_cfg.lane_width = 0;
  const auto zero = run_campaign(net, input, faults, zero_cfg);
  EXPECT_EQ(zero.stats.lane_width_effective, 1u);
  EXPECT_EQ(zero.stats.lane_batches, 0u);
  expect_results_identical(zero.results, truth.results);

  EngineConfig in_range_cfg;
  in_range_cfg.lane_width = 8;
  const auto in_range = run_campaign(net, input, faults, in_range_cfg);
  EXPECT_EQ(in_range.stats.lane_width_effective, 8u);
  expect_results_identical(in_range.results, truth.results);
}

TEST(Engine, DetectOnlyThresholdAccumulatesThinSpreadDivergence) {
  // Regression guard for detect_only + detection_threshold > 0: a stuck
  // output neuron diverges by at most one spike per timestep, so no single
  // frame can cross a threshold of 9.5 — detection is only reachable by
  // accumulating the divergence across frames. detect_only must agree with
  // the full comparison on every detected flag, report a crossing L1 for
  // detected faults and the exact L1 for undetected ones. Runs both the
  // scalar and the lane-batched path (which retires lanes mid-window).
  auto net = make_net();
  const auto input = busy_input(40, 8, 111);
  std::vector<fault::FaultDescriptor> faults;
  for (size_t i = 0; i < net.layer(2).num_neurons(); ++i) {
    fault::FaultDescriptor sat;
    sat.kind = fault::FaultKind::kNeuronSaturated;
    sat.neuron = {2, i};
    faults.push_back(sat);
    fault::FaultDescriptor dead;
    dead.kind = fault::FaultKind::kNeuronDead;
    dead.neuron = {2, i};
    faults.push_back(dead);
  }
  // Derive a threshold strictly between the smallest and largest exact L1
  // so the population splits into detected and undetected faults, and well
  // above the largest possible single-frame divergence (1.0 — one stuck
  // neuron), so crossing it takes many frames of accumulation.
  const auto exact = run_campaign(net, input, faults, {});
  std::vector<double> l1s(faults.size());
  for (size_t j = 0; j < faults.size(); ++j) l1s[j] = exact.results[j].output_l1;
  std::sort(l1s.begin(), l1s.end());
  const double threshold = (l1s.front() + l1s.back()) / 2.0;
  ASSERT_GT(threshold, 1.5) << "divergence too small to need accumulation";
  ASSERT_LT(l1s.front(), threshold);
  ASSERT_GT(l1s.back(), threshold);

  EngineConfig full_cfg;
  full_cfg.detection_threshold = threshold;
  const auto full = run_campaign(net, input, faults, full_cfg);
  ASSERT_GT(full.detected_count(), 0u);
  ASSERT_LT(full.detected_count(), faults.size());

  for (const size_t width : {size_t{1}, size_t{8}}) {
    SCOPED_TRACE("lane_width=" + std::to_string(width));
    EngineConfig cfg;
    cfg.detect_only = true;
    cfg.detection_threshold = threshold;
    cfg.lane_width = width;
    const auto fast = run_campaign(net, input, faults, cfg);
    ASSERT_EQ(fast.results.size(), full.results.size());
    size_t early_exits = 0;
    for (size_t j = 0; j < faults.size(); ++j) {
      EXPECT_EQ(fast.results[j].detected, full.results[j].detected) << "fault " << j;
      EXPECT_TRUE(fast.results[j].class_count_diff.empty());
      if (full.results[j].detected) {
        // Crossed by accumulation: above the threshold (hence above any
        // single frame's possible mass) but never above the exact L1.
        EXPECT_GT(fast.results[j].output_l1, threshold) << "fault " << j;
        EXPECT_LE(fast.results[j].output_l1, full.results[j].output_l1) << "fault " << j;
        if (fast.results[j].output_l1 < full.results[j].output_l1) ++early_exits;
      } else {
        // Train ended below the threshold: the lower bound is exact.
        EXPECT_EQ(fast.results[j].output_l1, full.results[j].output_l1) << "fault " << j;
      }
    }
    // At least one detected fault must have stopped before the train end,
    // otherwise this test is not exercising the early exit at all.
    EXPECT_GT(early_exits, 0u);
  }
}

TEST(LaneBatch, FallsBackToScalarForSingletonGroupsAndNoPrefixReuse) {
  auto net = make_net();
  const auto input = busy_input();
  // One fault per layer: every group is a singleton, so no batch forms even
  // at the default width.
  std::vector<fault::FaultDescriptor> faults(3);
  for (size_t l = 0; l < 3; ++l) {
    faults[l].kind = fault::FaultKind::kNeuronDead;
    faults[l].neuron = {l, 0};
  }
  const auto singleton = run_campaign(net, input, faults, {});
  EXPECT_EQ(singleton.stats.lane_batches, 0u);
  EXPECT_EQ(singleton.stats.lane_batched_faults, 0u);

  // prefix_reuse off disables batching outright (the batch path simulates
  // from the golden prefix by construction).
  const auto dense_faults = sampled_universe(net, 40, 77);
  EngineConfig no_prefix;
  no_prefix.prefix_reuse = false;
  const auto plain = run_campaign(net, input, dense_faults, no_prefix);
  EXPECT_EQ(plain.stats.lane_batches, 0u);
  const auto naive = naive_reference(net, input, dense_faults);
  expect_results_identical(plain.results, naive);
}

// The contract the sharded orchestrator (DESIGN.md §15) leans on: splitting
// a campaign into contiguous shards and running each shard independently —
// under ANY combination of shard count, lane width and thread count — yields
// results identical to the single-process, single-threaded, lane-free run.
// This is the in-process core of the merge-identity argument; the
// multi-process half (serialized dictionary bytes) lives in
// test_orchestrator.
TEST(DeterminismMatrix, ShardingLanesAndThreadsNeverChangeResults) {
  auto net = make_net();
  const auto input = busy_input();
  const auto faults = sampled_universe(net, 48, 29);

  // Reference: one shard, no lanes, no threads.
  EngineConfig ref_cfg;
  ref_cfg.num_threads = 1;
  ref_cfg.lane_width = 1;
  const auto reference = run_campaign(net, input, faults, ref_cfg);
  ASSERT_TRUE(reference.completed);
  ASSERT_EQ(reference.results.size(), faults.size());

  for (const size_t shards : {size_t{1}, size_t{2}, size_t{4}}) {
    for (const size_t lanes : {size_t{1}, size_t{8}}) {
      for (const size_t threads : {size_t{1}, size_t{4}}) {
        SCOPED_TRACE("shards=" + std::to_string(shards) + " lanes=" + std::to_string(lanes) +
                     " threads=" + std::to_string(threads));
        EngineConfig cfg;
        cfg.num_threads = threads;
        cfg.lane_width = lanes;
        std::vector<fault::DetectionResult> stitched;
        for (const auto& range : plan_shards(faults.size(), shards)) {
          const std::vector<fault::FaultDescriptor> slice(faults.begin() + range.begin,
                                                          faults.begin() + range.end);
          const auto shard_run = run_campaign(net, input, slice, cfg);
          ASSERT_TRUE(shard_run.completed);
          stitched.insert(stitched.end(), shard_run.results.begin(), shard_run.results.end());
        }
        expect_results_identical(stitched, reference.results);
      }
    }
  }
}

// ---- Divergence-frontier simulation (DESIGN.md §17) -----------------------

TEST(Frontier, FuzzMatrixBitIdenticalToDense) {
  // The frontier walk recomputes only the fault-effect cone; every
  // configuration must reproduce the frontier-off engine's DetectionResults
  // bit-for-bit: three architectures (dense MLP, conv+pool, recurrent) x
  // lane widths {1, 2, 8} x kernel modes x full/detect-only x telemetry
  // on/off.
  struct Case {
    std::string name;
    snn::Network net;
    tensor::Tensor input;
    std::vector<fault::FaultDescriptor> faults;
  };
  std::vector<Case> cases;
  {
    auto net = make_net();
    auto input = busy_input(14, 8, 171);
    auto faults = all_kinds_universe(net, 48, 172);
    cases.push_back({"dense-mlp", std::move(net), std::move(input), std::move(faults)});
  }
  {
    auto net = make_conv_pool_net();
    util::Rng rng(173);
    auto input = snn::random_spike_train(12, net.input_size(), 0.12, rng);
    auto faults = all_kinds_universe(net, 48, 174, /*conv_connections=*/true);
    cases.push_back({"conv-pool-dense", std::move(net), std::move(input), std::move(faults)});
  }
  {
    auto net = make_recurrent_net();
    util::Rng rng(175);
    auto input = snn::random_spike_train(16, net.input_size(), 0.4, rng);
    auto faults = all_kinds_universe(net, 48, 176);
    cases.push_back({"recurrent", std::move(net), std::move(input), std::move(faults)});
  }

  const bool telemetry_before = obs::telemetry_enabled();
  for (auto& c : cases) {
    ASSERT_FALSE(c.faults.empty()) << c.name;
    EngineConfig base_cfg;
    base_cfg.lane_width = 1;
    const auto base = run_campaign(c.net, c.input, c.faults, base_cfg);
    EXPECT_FALSE(base.stats.frontier_active) << c.name;
    EXPECT_EQ(base.stats.frontier_faults, 0u) << c.name;
    EngineConfig base_detect = base_cfg;
    base_detect.detect_only = true;
    const auto base_fast = run_campaign(c.net, c.input, c.faults, base_detect);

    for (const size_t width : {size_t{1}, size_t{2}, size_t{8}}) {
      for (const auto mode :
           {snn::KernelMode::kDense, snn::KernelMode::kSparse, snn::KernelMode::kAuto}) {
        for (const bool telemetry : {false, true}) {
          SCOPED_TRACE(c.name + " width=" + std::to_string(width) + " mode=" +
                       std::to_string(static_cast<int>(mode)) +
                       (telemetry ? " telemetry" : ""));
          obs::set_telemetry_enabled(telemetry);
          EngineConfig cfg;
          cfg.frontier = true;
          // Route every batch through the frontier walk so the matrix
          // exercises it unconditionally (the adaptive router would divert
          // unprofitable layers to the dense/lane kernels).
          cfg.frontier_adaptive = false;
          cfg.lane_width = width;
          cfg.kernel_mode = mode;
          const auto frontier = run_campaign(c.net, c.input, c.faults, cfg);
          EngineConfig dcfg = cfg;
          dcfg.detect_only = true;
          const auto frontier_fast = run_campaign(c.net, c.input, c.faults, dcfg);
          obs::set_telemetry_enabled(telemetry_before);

          EXPECT_TRUE(frontier.stats.frontier_active);
          EXPECT_EQ(frontier.stats.frontier_faults, frontier.stats.faults_simulated);
          EXPECT_TRUE(frontier.stats.golden_cache_state_traces);
          EXPECT_GT(frontier.stats.frontier_neuron_updates_dense, 0u);
          EXPECT_LE(frontier.stats.frontier_neuron_updates,
                    frontier.stats.frontier_neuron_updates_dense);
          expect_results_identical(frontier.results, base.results);
          EXPECT_EQ(frontier.detected_count(), base.detected_count());
          // Convergence decisions are exact on both paths, so pruning and
          // forward accounting agree with the frontier-off engine.
          EXPECT_EQ(frontier.stats.faults_pruned, base.stats.faults_pruned);

          expect_results_identical(frontier_fast.results, base_fast.results);
          EXPECT_EQ(frontier_fast.detected_count(), base_fast.detected_count());
        }
      }
    }
  }
}

TEST(Frontier, ForcedFallbackThresholdZeroStaysIdentical) {
  // frontier_threshold = 0 forces every frame with a non-empty dirty set
  // through the dense frame kernel — the degenerate configuration exercises
  // the fallback path on every architecture and must stay bit-identical
  // (and actually count its fallbacks).
  struct Case {
    std::string name;
    snn::Network net;
    tensor::Tensor input;
    std::vector<fault::FaultDescriptor> faults;
  };
  std::vector<Case> cases;
  {
    auto net = make_net();
    auto input = busy_input(14, 8, 181);
    auto faults = all_kinds_universe(net, 32, 182);
    cases.push_back({"dense-mlp", std::move(net), std::move(input), std::move(faults)});
  }
  {
    auto net = make_conv_pool_net();
    util::Rng rng(183);
    auto input = snn::random_spike_train(10, net.input_size(), 0.12, rng);
    auto faults = all_kinds_universe(net, 32, 184, /*conv_connections=*/true);
    cases.push_back({"conv-pool-dense", std::move(net), std::move(input), std::move(faults)});
  }
  for (auto& c : cases) {
    SCOPED_TRACE(c.name);
    const auto base = run_campaign(c.net, c.input, c.faults, {});
    for (const size_t width : {size_t{1}, size_t{8}}) {
      SCOPED_TRACE("width=" + std::to_string(width));
      EngineConfig cfg;
      cfg.frontier = true;
      cfg.frontier_adaptive = false;
      cfg.frontier_threshold = 0.0;
      cfg.lane_width = width;
      const auto forced = run_campaign(c.net, c.input, c.faults, cfg);
      EXPECT_TRUE(forced.stats.frontier_active);
      EXPECT_GT(forced.stats.frontier_fallback_frames, 0u);
      expect_results_identical(forced.results, base.results);

      // And a threshold >= 1 never falls back, with identical results too.
      EngineConfig never_cfg = cfg;
      never_cfg.frontier_threshold = 1.0;
      const auto never = run_campaign(c.net, c.input, c.faults, never_cfg);
      EXPECT_EQ(never.stats.frontier_fallback_frames, 0u);
      expect_results_identical(never.results, base.results);
    }
  }
}

TEST(Frontier, BudgetExhaustionFailsSoftToPrefixOnly) {
  // A golden-cache budget too small for the LIF state traces sheds them
  // (keeping the irreducible spike trains), which disables the frontier
  // walk — the campaign must fall back to the dense/lane kernels with
  // identical results, and the accounting must say what happened.
  auto net = make_net();
  const auto input = busy_input(14, 8, 191);
  const auto faults = all_kinds_universe(net, 32, 192);
  const auto base = run_campaign(net, input, faults, {});

  EngineConfig roomy_cfg;
  roomy_cfg.frontier = true;
  const auto roomy = run_campaign(net, input, faults, roomy_cfg);
  ASSERT_TRUE(roomy.stats.frontier_active);
  ASSERT_TRUE(roomy.stats.golden_cache_state_traces);

  EngineConfig tight_cfg;
  tight_cfg.frontier = true;
  // Enough for the spike trains alone, not for trains + state traces.
  tight_cfg.golden_cache_budget_bytes = roomy.stats.golden_cache_bytes - 1;
  const auto tight = run_campaign(net, input, faults, tight_cfg);
  EXPECT_FALSE(tight.stats.frontier_active);
  EXPECT_FALSE(tight.stats.golden_cache_state_traces);
  EXPECT_EQ(tight.stats.frontier_faults, 0u);
  EXPECT_LT(tight.stats.golden_cache_bytes, roomy.stats.golden_cache_bytes);
  expect_results_identical(tight.results, base.results);

  // A budget that does fit everything changes nothing.
  EngineConfig fitting_cfg;
  fitting_cfg.frontier = true;
  fitting_cfg.golden_cache_budget_bytes = roomy.stats.golden_cache_bytes;
  const auto fitting = run_campaign(net, input, faults, fitting_cfg);
  EXPECT_TRUE(fitting.stats.frontier_active);
  EXPECT_EQ(fitting.stats.golden_cache_bytes, roomy.stats.golden_cache_bytes);
  expect_results_identical(fitting.results, base.results);
}

TEST(Frontier, GoldenCacheMemoryAccountingIsExact) {
  // Per-layer byte accounting: spike train = T*N*4 bytes; state traces add
  // T*N*(4+4) bytes per layer when retained — and they are retained only
  // from the campaign's shallowest fault layer down (layers above it are
  // never read by the frontier walk). The stats must reproduce the closed
  // form exactly, with and without the frontier.
  auto net = make_net();
  const size_t T = 14;
  const auto input = busy_input(T, 8, 195);
  const auto faults = sampled_universe(net, 8, 196);
  size_t min_layer = net.num_layers();
  for (const auto& f : faults) min_layer = std::min(min_layer, fault_layer(f));

  const auto plain = run_campaign(net, input, faults, {});
  EngineConfig fcfg;
  fcfg.frontier = true;
  const auto frontier = run_campaign(net, input, faults, fcfg);

  ASSERT_EQ(plain.stats.golden_cache_layer_bytes.size(), net.num_layers());
  ASSERT_EQ(frontier.stats.golden_cache_layer_bytes.size(), net.num_layers());
  size_t plain_total = 0;
  size_t frontier_total = 0;
  for (size_t l = 0; l < net.num_layers(); ++l) {
    const size_t n = net.layer(l).num_neurons();
    EXPECT_EQ(plain.stats.golden_cache_layer_bytes[l], T * n * sizeof(float)) << "layer " << l;
    const size_t expected_state =
        l >= min_layer ? T * n * (sizeof(float) + sizeof(int32_t)) : size_t{0};
    EXPECT_EQ(frontier.stats.golden_cache_layer_bytes[l], T * n * sizeof(float) + expected_state)
        << "layer " << l;
    plain_total += plain.stats.golden_cache_layer_bytes[l];
    frontier_total += frontier.stats.golden_cache_layer_bytes[l];
  }
  EXPECT_EQ(plain.stats.golden_cache_bytes, plain_total);
  EXPECT_EQ(frontier.stats.golden_cache_bytes, frontier_total);
  EXPECT_FALSE(plain.stats.golden_cache_state_traces);
  EXPECT_TRUE(frontier.stats.golden_cache_state_traces);
}

TEST(Frontier, ComposesWithCheckpointResumeAndResultCache) {
  // The frontier path must honor the rest of the engine contract: resuming
  // a cancelled frontier campaign from its checkpoint, and serving pairs
  // from a result cache, both join to the frontier-off truth bit-exactly.
  auto net = make_net();
  const auto input = busy_input();
  const auto faults = sampled_universe(net, 64, 197);
  const auto truth = run_campaign(net, input, faults, {});

  const std::string path = temp_path("ck_frontier_resume.jsonl");
  std::remove(path.c_str());
  std::atomic<long> budget{4};
  EngineConfig cfg;
  cfg.frontier = true;
  cfg.num_threads = 2;
  cfg.checkpoint_path = path;
  cfg.checkpoint_flush_every = 1;
  cfg.cancel = [&budget] { return budget.fetch_sub(1) <= 0; };
  const auto partial = run_campaign(net, input, faults, cfg);
  EXPECT_FALSE(partial.completed);

  EngineConfig resume_cfg;
  resume_cfg.frontier = true;
  resume_cfg.checkpoint_path = path;
  const auto resumed = run_campaign(net, input, faults, resume_cfg);
  EXPECT_TRUE(resumed.completed);
  expect_results_identical(resumed.results, truth.results);
  std::remove(path.c_str());

  EngineConfig cache_cfg;
  cache_cfg.frontier = true;
  cache_cfg.frontier_adaptive = false;
  cache_cfg.result_cache = [&truth](size_t j, fault::DetectionResult& r) {
    if (j % 2 == 0) return false;
    r = truth.results[j];
    return true;
  };
  const auto cached = run_campaign(net, input, faults, cache_cfg);
  EXPECT_EQ(cached.stats.pairs_reused, faults.size() / 2);
  EXPECT_EQ(cached.stats.frontier_faults, cached.stats.faults_simulated);
  expect_results_identical(cached.results, truth.results);
}

TEST(Frontier, AdaptiveRoutingStaysIdenticalWhileDivertingHotLayers) {
  // The default adaptive router probes each fault layer and keeps the
  // frontier walk only where its recompute fraction says it wins; diverted
  // batches run the dense/lane kernels. Either route is bit-identical, so
  // the campaign output must not change — only frontier_faults may shrink.
  struct Case {
    std::string name;
    snn::Network net;
    tensor::Tensor input;
    std::vector<fault::FaultDescriptor> faults;
  };
  std::vector<Case> cases;
  {
    auto net = make_net();
    auto input = busy_input(14, 8, 211);
    auto faults = all_kinds_universe(net, 64, 212);
    cases.push_back({"dense-mlp", std::move(net), std::move(input), std::move(faults)});
  }
  {
    auto net = make_recurrent_net();
    util::Rng rng(213);
    auto input = snn::random_spike_train(16, net.input_size(), 0.4, rng);
    auto faults = all_kinds_universe(net, 64, 214);
    cases.push_back({"recurrent", std::move(net), std::move(input), std::move(faults)});
  }
  for (auto& c : cases) {
    SCOPED_TRACE(c.name);
    const auto base = run_campaign(c.net, c.input, c.faults, {});
    for (const size_t width : {size_t{1}, size_t{8}}) {
      SCOPED_TRACE("width=" + std::to_string(width));
      EngineConfig cfg;
      cfg.frontier = true;  // frontier_adaptive stays at its default (on)
      cfg.lane_width = width;
      const auto adaptive = run_campaign(c.net, c.input, c.faults, cfg);
      EXPECT_TRUE(adaptive.stats.frontier_active);
      // Probe batches always run the frontier walk; diverted batches are
      // simulated but not frontier-counted.
      EXPECT_GT(adaptive.stats.frontier_faults, 0u);
      EXPECT_LE(adaptive.stats.frontier_faults, adaptive.stats.faults_simulated);
      expect_results_identical(adaptive.results, base.results);
      EXPECT_EQ(adaptive.detected_count(), base.detected_count());
    }
  }
}

}  // namespace
}  // namespace snntest::campaign
