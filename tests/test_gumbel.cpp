// Gumbel-Softmax + STE input parameterization tests (Eqs. 17-19):
// binarization, temperature behaviour, the backward chain rule, window
// growth, and determinism.
#include <gtest/gtest.h>

#include <cmath>

#include "core/gumbel.hpp"

namespace snntest::core {
namespace {

TEST(Gumbel, ForwardIsBinary) {
  util::Rng rng(1);
  GumbelSoftmaxInput input(10, 8, rng);
  const Tensor& b = input.forward(0.5, true);
  EXPECT_EQ(b.shape(), Shape({10, 8}));
  for (size_t i = 0; i < b.numel(); ++i) EXPECT_TRUE(b[i] == 0.0f || b[i] == 1.0f);
}

TEST(Gumbel, DeterministicModeFollowsLogitSign) {
  util::Rng rng(2);
  GumbelSoftmaxInput input(2, 2, rng);
  Tensor& real = input.mutable_real();
  real[0] = 5.0f;
  real[1] = -5.0f;
  real[2] = 3.0f;
  real[3] = -0.1f;
  const Tensor& b = input.forward(0.5, /*stochastic=*/false);
  EXPECT_EQ(b[0], 1.0f);
  EXPECT_EQ(b[1], 0.0f);
  EXPECT_EQ(b[2], 1.0f);
  EXPECT_EQ(b[3], 0.0f);
}

TEST(Gumbel, StochasticModeExplores) {
  util::Rng rng(3);
  GumbelSoftmaxInput input(20, 20, rng);
  input.mutable_real().fill(0.0f);  // 50/50 logits
  const Tensor a = input.forward(0.9, true);
  const Tensor b = input.forward(0.9, true);
  double diff = 0.0;
  for (size_t i = 0; i < a.numel(); ++i) diff += std::abs(a[i] - b[i]);
  EXPECT_GT(diff, 0.0);  // fresh noise each call
}

TEST(Gumbel, TemperatureScalesBackwardSlope) {
  // The STE binarization at 0.5 makes the *forward* invariant to tau
  // (sigmoid(x/tau) > 0.5 iff x > 0); tau controls how much gradient leaks
  // through: dsoft/dreal at logit 0 is 0.25/tau.
  auto slope_at_zero = [](double tau) {
    util::Rng rng(4);
    GumbelSoftmaxInput input(1, 1, rng);
    input.mutable_real()[0] = 0.0f;
    input.forward(tau, /*stochastic=*/false);
    Tensor ones(Shape{1, 1}, 1.0f);
    input.backward(ones);
    return input.grad_data()[0];
  };
  EXPECT_NEAR(slope_at_zero(0.5), 0.5f, 1e-4);
  EXPECT_NEAR(slope_at_zero(0.25), 1.0f, 1e-4);
  EXPECT_GT(slope_at_zero(0.1), slope_at_zero(1.0));
}

TEST(Gumbel, BackwardAppliesChainRule) {
  util::Rng rng(5);
  GumbelSoftmaxInput input(1, 3, rng);
  Tensor& real = input.mutable_real();
  real[0] = 0.0f;   // soft = 0.5 -> max slope
  real[1] = 8.0f;   // soft ~ 1 -> near-zero slope
  real[2] = -8.0f;  // soft ~ 0 -> near-zero slope
  const double tau = 0.5;
  input.forward(tau, /*stochastic=*/false);
  Tensor grad_in(Shape{1, 3}, std::vector<float>{1.0f, 1.0f, 1.0f});
  input.backward(grad_in);
  // dsoft/dreal = s(1-s)/tau: at s=0.5 -> 0.25/0.5 = 0.5
  EXPECT_NEAR(input.grad_data()[0], 0.5f, 1e-4);
  EXPECT_NEAR(input.grad_data()[1], 0.0f, 1e-4);
  EXPECT_NEAR(input.grad_data()[2], 0.0f, 1e-4);
}

TEST(Gumbel, BackwardShapeChecked) {
  util::Rng rng(6);
  GumbelSoftmaxInput input(4, 4, rng);
  input.forward(0.5, false);
  EXPECT_THROW(input.backward(Tensor(Shape{2, 4})), std::invalid_argument);
}

TEST(Gumbel, InvalidTauRejected) {
  util::Rng rng(7);
  GumbelSoftmaxInput input(2, 2, rng);
  EXPECT_THROW(input.forward(0.0, true), std::invalid_argument);
  EXPECT_THROW(input.forward(-1.0, true), std::invalid_argument);
}

TEST(Gumbel, GrowPreservesOptimizedPrefix) {
  util::Rng rng(8);
  GumbelSoftmaxInput input(5, 3, rng);
  const std::vector<float> before(input.real().data(), input.real().data() + 15);
  util::Rng rng2(9);
  input.grow(4, rng2);
  EXPECT_EQ(input.num_steps(), 9u);
  EXPECT_EQ(input.num_channels(), 3u);
  for (size_t i = 0; i < 15; ++i) EXPECT_EQ(input.real()[i], before[i]);
  // new tail is initialized (not all zeros)
  double tail = 0.0;
  for (size_t i = 15; i < input.size(); ++i) tail += std::abs(input.real()[i]);
  EXPECT_GT(tail, 0.0);
}

TEST(Gumbel, InitialBiasControlsDensity) {
  util::Rng rng_a(10);
  GumbelSoftmaxInput sparse(30, 30, rng_a, -3.0f);
  util::Rng rng_b(10);
  GumbelSoftmaxInput dense(30, 30, rng_b, +3.0f);
  const double sparse_density =
      static_cast<double>(sparse.forward(0.5, false).count_nonzero()) / 900.0;
  const double dense_density =
      static_cast<double>(dense.forward(0.5, false).count_nonzero()) / 900.0;
  EXPECT_LT(sparse_density, 0.2);
  EXPECT_GT(dense_density, 0.8);
}

TEST(Gumbel, SameSeedSameTrajectory) {
  util::Rng rng_a(11);
  util::Rng rng_b(11);
  GumbelSoftmaxInput a(6, 6, rng_a);
  GumbelSoftmaxInput b(6, 6, rng_b);
  const Tensor& ba = a.forward(0.7, true);
  const Tensor& bb = b.forward(0.7, true);
  for (size_t i = 0; i < ba.numel(); ++i) ASSERT_EQ(ba[i], bb[i]);
}

}  // namespace
}  // namespace snntest::core
