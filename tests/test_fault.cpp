// Fault framework tests: descriptor semantics, int8 bit-flip model,
// universe enumeration (paper Table II composition), injector behaviour per
// kind (TEST_P over every fault kind), perfect restore, campaign detection
// (Eq. 3) and critical/benign classification (Sec. III).
#include <gtest/gtest.h>

#include <cmath>

#include "data/synthetic_shd.hpp"
#include "fault/campaign.hpp"
#include "snn/conv_layer.hpp"
#include "fault/classifier.hpp"
#include "fault/coverage.hpp"
#include "fault/injector.hpp"
#include "fault/registry.hpp"
#include "snn/dense_layer.hpp"
#include "snn/spike_train.hpp"

namespace snntest::fault {
namespace {

snn::Network make_net(uint64_t seed = 1) {
  util::Rng rng(seed);
  snn::LifParams lif;
  snn::Network net("fault-test");
  auto l1 = std::make_unique<snn::DenseLayer>(8, 12, lif);
  l1->init_weights(rng, 1.3f);
  net.add_layer(std::move(l1));
  auto l2 = std::make_unique<snn::DenseLayer>(12, 4, lif);
  l2->init_weights(rng, 1.3f);
  net.add_layer(std::move(l2));
  return net;
}

tensor::Tensor busy_input(size_t T = 16, size_t n = 8, uint64_t seed = 7) {
  util::Rng rng(seed);
  return snn::random_spike_train(T, n, 0.5, rng);
}

TEST(FaultDescriptor, KindNamesAndTargets) {
  EXPECT_STREQ(fault_kind_name(FaultKind::kNeuronDead), "neuron-dead");
  EXPECT_STREQ(fault_kind_name(FaultKind::kSynapseBitFlip), "synapse-bitflip");
  EXPECT_TRUE(is_neuron_fault(FaultKind::kNeuronSaturated));
  EXPECT_TRUE(is_neuron_fault(FaultKind::kNeuronLeakVariation));
  EXPECT_FALSE(is_neuron_fault(FaultKind::kSynapseDead));
  FaultDescriptor f;
  f.kind = FaultKind::kNeuronDead;
  f.neuron = {1, 3};
  EXPECT_EQ(f.to_string(), "neuron-dead@L1n3");
}

TEST(Quantization, RoundTripAndClamp) {
  EXPECT_EQ(quantize_weight(1.0f, 1.0f), 127);
  EXPECT_EQ(quantize_weight(-1.0f, 1.0f), -127);
  EXPECT_EQ(quantize_weight(5.0f, 1.0f), 127);  // clamped
  EXPECT_EQ(quantize_weight(0.0f, 1.0f), 0);
  EXPECT_NEAR(dequantize_weight(quantize_weight(0.5f, 1.0f), 1.0f), 0.5f, 0.005f);
  EXPECT_THROW(quantize_weight(1.0f, 0.0f), std::invalid_argument);
}

TEST(Quantization, BitFlipChangesValue) {
  // flipping the sign bit of a positive weight makes it negative-ish
  const float flipped = bitflip_weight(0.5f, 1.0f, 7);
  EXPECT_LT(flipped, 0.0f);
  // flipping a low bit changes the value slightly
  const float low = bitflip_weight(0.5f, 1.0f, 0);
  EXPECT_NE(low, 0.5f);
  EXPECT_NEAR(low, 0.5f, 0.02f);
  EXPECT_THROW(bitflip_weight(0.5f, 1.0f, 8), std::invalid_argument);
}

TEST(Registry, DefaultUniverseMatchesPaperComposition) {
  auto net = make_net();
  const auto faults = enumerate_faults(net);
  // paper composition: 2 faults per neuron + 3 per synapse (Table II).
  EXPECT_EQ(count_neuron_faults(faults), 2 * net.total_neurons());
  EXPECT_EQ(count_synapse_faults(faults), 3 * net.total_weights());
}

TEST(Registry, ExtendedUniverse) {
  auto net = make_net();
  FaultUniverseConfig cfg;
  cfg.neuron_threshold_variation = true;
  cfg.neuron_leak_variation = true;
  cfg.neuron_refractory_variation = true;
  cfg.synapse_bitflip = true;
  cfg.bitflip_bits = {3, 6};
  const auto faults = enumerate_faults(net, cfg);
  // neurons: dead + saturated + 2x threshold + 2x leak + refractory = 7
  EXPECT_EQ(count_neuron_faults(faults), 7 * net.total_neurons());
  // synapses: dead + sat+ + sat- + 2 bitflips = 5
  EXPECT_EQ(count_synapse_faults(faults), 5 * net.total_weights());
}

TEST(Registry, EnumerationDeterministic) {
  auto net = make_net();
  const auto a = enumerate_faults(net);
  const auto b = enumerate_faults(net);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].magnitude, b[i].magnitude);
  }
}

TEST(Registry, SaturationMagnitudeFromLayerStats) {
  auto net = make_net();
  const auto stats = compute_weight_stats(net);
  const auto faults = enumerate_faults(net);
  for (const auto& f : faults) {
    if (f.kind == FaultKind::kSynapseSaturatedPositive) {
      EXPECT_NEAR(f.magnitude, 1.5f * stats[f.weight.layer].max_abs, 1e-6);
    }
  }
}

TEST(Registry, SamplingIsSubsetWithoutDuplicates) {
  auto net = make_net();
  const auto universe = enumerate_faults(net);
  util::Rng rng(3);
  const auto sampled = sample_faults(universe, 20, rng);
  EXPECT_EQ(sampled.size(), 20u);
  const auto all = sample_faults(universe, universe.size() + 100, rng);
  EXPECT_EQ(all.size(), universe.size());
}

// ---------- injector semantics per fault kind ----------

class InjectorKindTest : public testing::TestWithParam<FaultKind> {};

TEST_P(InjectorKindTest, InjectChangesAndRemoveRestores) {
  auto net = make_net();
  snn::Network pristine(net);
  const auto stats = compute_weight_stats(net);
  FaultInjector injector(net, stats);

  FaultDescriptor f;
  f.kind = GetParam();
  if (is_neuron_fault(f.kind)) {
    f.neuron = {0, 5};
    f.magnitude = f.kind == FaultKind::kNeuronRefractoryVariation ? 3.0f : 0.5f;
  } else {
    f.weight = {0, 0, 11};
    f.magnitude = f.kind == FaultKind::kSynapseBitFlip ? 6.0f : 1.5f * stats[0].max_abs;
  }

  injector.inject(f);
  EXPECT_TRUE(injector.active());

  // The targeted state must differ from pristine while injected.
  bool changed = false;
  if (is_neuron_fault(f.kind)) {
    auto& lif = net.layer(0).lif();
    auto& ref = pristine.layer(0).lif();
    changed = lif.modes()[5] != ref.modes()[5] ||
              lif.thresholds()[5] != ref.thresholds()[5] ||
              lif.leaks()[5] != ref.leaks()[5] ||
              lif.refractories()[5] != ref.refractories()[5];
  } else {
    auto np = net.layer(0).params();
    auto pp = pristine.layer(0).params();
    changed = np[0].value[11] != pp[0].value[11];
  }
  EXPECT_TRUE(changed) << f.to_string() << " did not change the network";

  injector.remove();
  EXPECT_FALSE(injector.active());

  // Bit-exact restore: behaviour must match pristine on a busy input.
  const auto input = busy_input();
  const auto a = net.forward(input).output();
  const auto b = pristine.forward(input).output();
  for (size_t i = 0; i < a.numel(); ++i) {
    ASSERT_EQ(a[i], b[i]) << f.to_string() << " not fully restored";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, InjectorKindTest,
    testing::Values(FaultKind::kNeuronDead, FaultKind::kNeuronSaturated,
                    FaultKind::kNeuronThresholdVariation, FaultKind::kNeuronLeakVariation,
                    FaultKind::kNeuronRefractoryVariation, FaultKind::kSynapseDead,
                    FaultKind::kSynapseSaturatedPositive, FaultKind::kSynapseSaturatedNegative,
                    FaultKind::kSynapseBitFlip),
    [](const testing::TestParamInfo<FaultKind>& info) {
      std::string name = fault_kind_name(info.param);
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(Injector, SingleFaultAssumptionEnforced) {
  auto net = make_net();
  FaultInjector injector(net);
  FaultDescriptor f;
  f.kind = FaultKind::kNeuronDead;
  f.neuron = {0, 0};
  injector.inject(f);
  EXPECT_THROW(injector.inject(f), std::logic_error);
  injector.remove();
  injector.inject(f);  // allowed again
  injector.remove();
}

TEST(Injector, DeadNeuronSilencesItsRow) {
  auto net = make_net();
  FaultInjector injector(net);
  FaultDescriptor f;
  f.kind = FaultKind::kNeuronDead;
  f.neuron = {0, 2};
  ScopedFault scoped(injector, f);
  const auto fwd = net.forward(busy_input());
  EXPECT_EQ(fwd.spike_count(0, 2), 0u);
}

TEST(Injector, SaturatedNeuronFiresEveryStep) {
  auto net = make_net();
  FaultInjector injector(net);
  FaultDescriptor f;
  f.kind = FaultKind::kNeuronSaturated;
  f.neuron = {1, 1};
  ScopedFault scoped(injector, f);
  const auto input = busy_input(10);
  const auto fwd = net.forward(input);
  EXPECT_EQ(fwd.spike_count(1, 1), 10u);
}

TEST(Injector, SynapseDeadZeroesWeight) {
  auto net = make_net();
  FaultInjector injector(net);
  FaultDescriptor f;
  f.kind = FaultKind::kSynapseDead;
  f.weight = {0, 0, 5};
  injector.inject(f);
  EXPECT_EQ(net.layer(0).params()[0].value[5], 0.0f);
  injector.remove();
}

TEST(Injector, ScopedFaultRestoresOnException) {
  auto net = make_net();
  const float original = net.layer(0).params()[0].value[0];
  FaultInjector injector(net);
  FaultDescriptor f;
  f.kind = FaultKind::kSynapseDead;
  f.weight = {0, 0, 0};
  try {
    ScopedFault scoped(injector, f);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(net.layer(0).params()[0].value[0], original);
}

TEST(Injector, ScopedFaultRestoresNeuronStateOnException) {
  auto net = make_net();
  snn::Network pristine(net);
  FaultInjector injector(net);
  FaultDescriptor f;
  f.kind = FaultKind::kNeuronThresholdVariation;
  f.neuron = {0, 4};
  f.magnitude = 0.75f;
  try {
    ScopedFault scoped(injector, f);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_FALSE(injector.active());
  const auto& lif = net.layer(0).lif();
  const auto& ref = pristine.layer(0).lif();
  EXPECT_EQ(lif.thresholds()[4], ref.thresholds()[4]);
  EXPECT_EQ(lif.leaks()[4], ref.leaks()[4]);
  EXPECT_EQ(lif.modes()[4], ref.modes()[4]);
}

TEST(Injector, DoubleInjectThrowsAcrossTargetKinds) {
  auto net = make_net();
  FaultInjector injector(net);
  FaultDescriptor neuron;
  neuron.kind = FaultKind::kNeuronDead;
  neuron.neuron = {0, 1};
  FaultDescriptor synapse;
  synapse.kind = FaultKind::kSynapseDead;
  synapse.weight = {1, 0, 2};
  injector.inject(neuron);
  // The single-fault assumption holds regardless of the second fault's kind.
  EXPECT_THROW(injector.inject(synapse), std::logic_error);
  EXPECT_THROW(injector.inject(neuron), std::logic_error);
  injector.remove();
  injector.inject(synapse);  // allowed after removal
  injector.remove();
}

TEST(Campaign, SaturatedOutputNeuronAlwaysDetected) {
  auto net = make_net();
  std::vector<FaultDescriptor> faults(1);
  faults[0].kind = FaultKind::kNeuronSaturated;
  faults[0].neuron = {1, 0};
  const auto outcome = run_detection_campaign(net, busy_input(), faults);
  EXPECT_TRUE(outcome.results[0].detected);
  EXPECT_GT(outcome.results[0].output_l1, 0.0);
  EXPECT_EQ(outcome.detected_count(), 1u);
}

TEST(Campaign, ZeroInputDetectsNothingButSaturation) {
  auto net = make_net();
  std::vector<FaultDescriptor> faults(2);
  faults[0].kind = FaultKind::kNeuronDead;
  faults[0].neuron = {0, 0};
  faults[1].kind = FaultKind::kNeuronSaturated;
  faults[1].neuron = {1, 2};
  const auto zero = snn::zero_train(12, 8);
  const auto outcome = run_detection_campaign(net, zero, faults);
  // dead neuron can't be observed without activity...
  EXPECT_FALSE(outcome.results[0].detected);
  // ...but a saturated output neuron self-announces (Sec. IV-C1 note).
  EXPECT_TRUE(outcome.results[1].detected);
}

TEST(Campaign, DoesNotMutateInputNetwork) {
  auto net = make_net();
  snn::Network pristine(net);
  auto faults = enumerate_faults(net);
  faults.resize(30);
  run_detection_campaign(net, busy_input(), faults);
  const auto input = busy_input(14, 8, 9);
  const auto a = net.forward(input).output();
  const auto b = pristine.forward(input).output();
  for (size_t i = 0; i < a.numel(); ++i) ASSERT_EQ(a[i], b[i]);
}

TEST(Campaign, ClassCountDiffSignsConsistent) {
  auto net = make_net();
  std::vector<FaultDescriptor> faults(1);
  faults[0].kind = FaultKind::kNeuronSaturated;
  faults[0].neuron = {1, 3};  // output neuron 3 saturates -> its count rises
  const auto outcome = run_detection_campaign(net, busy_input(), faults);
  EXPECT_GT(outcome.results[0].class_count_diff[3], 0);
}

TEST(Classifier, SaturatedOutputNeuronIsCritical) {
  auto net = make_net();
  // tiny dataset matching the 8-channel network
  data::SyntheticShdConfig cfg;
  cfg.count = 40;
  cfg.channels = 8;
  cfg.num_steps = 16;
  data::SyntheticShd ds(cfg);
  // SyntheticShd has 20 classes but the net has only 4 outputs; labels are
  // irrelevant for criticality (prediction *changes* matter), so restrict to
  // prediction comparison only.
  std::vector<FaultDescriptor> faults(2);
  faults[0].kind = FaultKind::kNeuronSaturated;
  faults[0].neuron = {1, 0};
  faults[1].kind = FaultKind::kSynapseDead;
  faults[1].weight = {1, 0, 0};
  ClassifierConfig cc;
  cc.max_samples = 12;
  const auto outcome = classify_faults(net, faults, ds, cc);
  EXPECT_TRUE(outcome.labels[0].critical);
  EXPECT_GT(outcome.labels[0].prediction_changes, 0u);
}

TEST(Coverage, ReportPartitionsAndEscapes) {
  std::vector<FaultDescriptor> faults(4);
  faults[0].kind = FaultKind::kNeuronDead;     // critical, detected
  faults[1].kind = FaultKind::kNeuronDead;     // critical, UNDETECTED (escape)
  faults[2].kind = FaultKind::kSynapseDead;    // benign, detected
  faults[3].kind = FaultKind::kSynapseDead;    // benign, undetected
  std::vector<DetectionResult> det(4);
  det[0].detected = true;
  det[1].detected = false;
  det[2].detected = true;
  det[3].detected = false;
  std::vector<FaultClassification> labels(4);
  labels[0].critical = true;
  labels[1].critical = true;
  labels[1].accuracy_drop = 0.07;
  labels[2].critical = false;
  labels[3].critical = false;
  const auto report = build_coverage_report(faults, det, labels);
  EXPECT_EQ(report.critical_neuron.detected, 1u);
  EXPECT_EQ(report.critical_neuron.total, 2u);
  EXPECT_DOUBLE_EQ(report.critical_neuron.coverage(), 0.5);
  EXPECT_EQ(report.benign_synapse.total, 2u);
  EXPECT_DOUBLE_EQ(report.overall.coverage(), 0.5);
  EXPECT_DOUBLE_EQ(report.max_escape_accuracy_drop_neuron, 0.07);
  EXPECT_DOUBLE_EQ(report.max_escape_accuracy_drop_synapse, 0.0);
}

TEST(Coverage, MismatchedArraysRejected) {
  std::vector<FaultDescriptor> faults(2);
  std::vector<DetectionResult> det(1);
  std::vector<FaultClassification> labels(2);
  EXPECT_THROW(build_coverage_report(faults, det, labels), std::invalid_argument);
}

TEST(Coverage, EmptyIsFullCoverage) {
  EXPECT_DOUBLE_EQ(fault_coverage({}), 1.0);
}

// ---------- per-connection conv synapse faults ----------

snn::Network make_conv_net(uint64_t seed = 31) {
  util::Rng rng(seed);
  snn::LifParams lif;
  snn::Network net("conv-fault-net");
  snn::Conv2dSpec spec;
  spec.in_channels = 1;
  spec.in_height = 6;
  spec.in_width = 6;
  spec.out_channels = 4;
  spec.kernel = 3;
  spec.stride = 1;
  spec.padding = 1;
  auto conv = std::make_unique<snn::ConvLayer>(spec, lif);
  conv->init_weights(rng, 1.3f);
  net.add_layer(std::move(conv));
  auto fc = std::make_unique<snn::DenseLayer>(spec.output_size(), 3, lif);
  fc->init_weights(rng, 1.3f);
  net.add_layer(std::move(fc));
  return net;
}

TEST(ConnectionFaults, RegistryCountsMatchConnections) {
  auto net = make_conv_net();
  FaultUniverseConfig cfg;
  cfg.neuron_dead = false;
  cfg.neuron_saturated = false;
  cfg.conv_connection_granularity = true;
  const auto faults = enumerate_faults(net, cfg);
  const size_t conv_connections = net.layer(0).num_connections();
  const size_t dense_weights = net.layer(1).num_weights();
  EXPECT_EQ(faults.size(), 3 * (conv_connections + dense_weights));
  size_t connection_faults = 0;
  for (const auto& f : faults) connection_faults += f.connection_granularity;
  EXPECT_EQ(connection_faults, 3 * conv_connections);
}

TEST(ConnectionFaults, DeadConnectionMatchesStoredWeightOnSinglePosition) {
  // A dead *connection* at one output position must differ from the golden
  // network only through that position's synaptic current — verified by
  // comparing against a manual recomputation.
  auto net = make_conv_net(32);
  auto& conv = static_cast<snn::ConvLayer&>(net.layer(0));
  // connection: input pixel (2, 2) -> output (channel 1, position (2, 2)),
  // i.e. the kernel's center tap with padding 1.
  const size_t in_index = 2 * 6 + 2;
  const size_t out_index = (1 * 6 + 2) * 6 + 2;
  const float stored = conv.connection_weight(out_index, in_index);
  EXPECT_NE(stored, 0.0f);

  util::Rng rng(33);
  const auto input = snn::random_spike_train(10, 36, 0.5, rng);
  snn::Network golden(net);
  const auto golden_fwd = golden.forward(input);

  FaultInjector injector(net);
  FaultDescriptor f;
  f.kind = FaultKind::kSynapseDead;
  f.connection_granularity = true;
  f.connection = {0, out_index, in_index};
  {
    ScopedFault scoped(injector, f);
    const auto faulty_fwd = net.forward(input);
    // the faulted output neuron's train may change; all other conv outputs
    // at timesteps where the input pixel is silent are unaffected...
    // the crisp property: with the input pixel firing every step and a
    // center-tap weight, *some* behavioural difference in the conv layer is
    // expected only via out_index.
    const auto& a = golden_fwd.layer_outputs[0];
    const auto& b = faulty_fwd.layer_outputs[0];
    for (size_t t = 0; t < a.shape().dim(0); ++t) {
      for (size_t i = 0; i < a.shape().dim(1); ++i) {
        if (i != out_index) {
          ASSERT_EQ(a.at(t, i), b.at(t, i)) << "non-target conv neuron changed";
        }
      }
    }
  }
  // removal restores bit-exact behaviour
  const auto restored = net.forward(input);
  for (size_t i = 0; i < golden_fwd.output().numel(); ++i) {
    ASSERT_EQ(restored.output()[i], golden_fwd.output()[i]);
  }
}

TEST(ConnectionFaults, SaturatedConnectionInjectsCurrent) {
  auto net = make_conv_net(34);
  auto& conv = static_cast<snn::ConvLayer&>(net.layer(0));
  (void)conv;
  FaultInjector injector(net);
  FaultDescriptor f;
  f.kind = FaultKind::kSynapseSaturatedPositive;
  f.connection_granularity = true;
  const size_t in_index = 3 * 6 + 3;
  const size_t out_index = (0 * 6 + 3) * 6 + 3;
  f.connection = {0, out_index, in_index};
  f.magnitude = 10.0f;  // huge weight: a single input spike must fire it
  ScopedFault scoped(injector, f);
  tensor::Tensor input(tensor::Shape{1, 36});
  input[in_index] = 1.0f;
  const auto fwd = net.forward(input);
  EXPECT_EQ(fwd.layer_outputs[0].at(0, out_index), 1.0f);
}

TEST(ConnectionFaults, UnconnectedPairRejected) {
  auto net = make_conv_net(35);
  auto& conv = static_cast<snn::ConvLayer&>(net.layer(0));
  // output (0,0) and input (5,5) are farther than the kernel reach
  EXPECT_THROW(conv.connection_weight(0, 35), std::invalid_argument);
}

TEST(ConnectionFaults, ScopedFaultRestoresOverrideOnException) {
  auto net = make_conv_net(40);
  auto& conv = static_cast<snn::ConvLayer&>(net.layer(0));
  FaultInjector injector(net);
  FaultDescriptor f;
  f.kind = FaultKind::kSynapseDead;
  f.connection_granularity = true;
  f.connection = {0, (1u * 6 + 2) * 6 + 2, 2u * 6 + 2};
  try {
    ScopedFault scoped(injector, f);
    EXPECT_TRUE(conv.connection_override_active());
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_FALSE(conv.connection_override_active());
  EXPECT_FALSE(injector.active());
}

TEST(ConnectionFaults, CampaignMixesGranularities) {
  auto net = make_conv_net(36);
  FaultUniverseConfig cfg;
  cfg.conv_connection_granularity = true;
  auto universe = enumerate_faults(net, cfg);
  util::Rng rng(37);
  auto faults = sample_faults(universe, 60, rng);
  const auto input = snn::random_spike_train(10, 36, 0.5, rng);
  const auto outcome = run_detection_campaign(net, input, faults);
  EXPECT_EQ(outcome.results.size(), faults.size());
  EXPECT_GT(outcome.detected_count(), 0u);
}

}  // namespace
}  // namespace snntest::fault
