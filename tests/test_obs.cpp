// Telemetry subsystem tests (DESIGN.md §11): registry aggregation under
// concurrent increments, histogram bucket semantics + percentile estimates,
// span rings + Chrome trace-event export, cross-process trace merging,
// run-report JSON with environment provenance, disabled-path overhead, and
// the determinism contract — the testgen stimulus and campaign results must
// be byte-identical with telemetry on vs. off. JSON emitted by the
// subsystem is parsed back with util::parse_json.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "campaign/engine.hpp"
#include "core/test_generator.hpp"
#include "fault/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "obs/trace_merge.hpp"
#include "snn/dense_layer.hpp"
#include "snn/spike_train.hpp"
#include "tensor/simd.hpp"
#include "util/json.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace snntest {
namespace {

using util::JsonValue;
using util::parse_json;

// Restores the telemetry flag and clears metric/trace state around a test.
struct TelemetryGuard {
  bool prev = obs::telemetry_enabled();
  TelemetryGuard() {
    obs::Registry::instance().reset_values();
    obs::reset_trace();
  }
  ~TelemetryGuard() {
    obs::set_telemetry_enabled(prev);
    obs::Registry::instance().reset_values();
    obs::reset_trace();
  }
};

// ---------------------------------------------------------------------------
// Metrics registry

TEST(ObsCounter, AggregatesAcrossThreads) {
  TelemetryGuard guard;
  obs::Counter& c = obs::Registry::instance().counter("test/parallel_adds");
  const uint64_t before = c.value();
  util::ThreadPool pool(8);
  constexpr size_t kItems = 20000;
  util::parallel_for_dynamic(&pool, kItems, /*grain=*/7,
                             [&](size_t /*worker*/, size_t /*i*/) { c.add(1); });
  EXPECT_EQ(c.value() - before, kItems);
}

TEST(ObsHistogram, AggregatesAcrossThreads) {
  TelemetryGuard guard;
  obs::Histogram& h = obs::Registry::instance().histogram(
      "test/parallel_observe", obs::Histogram::linear_bounds(0.1, 1.0, 10));
  util::ThreadPool pool(8);
  constexpr size_t kItems = 10000;
  util::parallel_for_dynamic(&pool, kItems, /*grain=*/3, [&](size_t /*worker*/, size_t i) {
    h.observe(static_cast<double>(i % 10) * 0.1 + 0.05);
  });
  EXPECT_EQ(h.count(), kItems);
  // Sum of (i%10)*0.1 + 0.05 over 10000 items = 1000 * (0+...+0.9) + 500.
  EXPECT_NEAR(h.sum(), 1000.0 * 4.5 + 500.0, 1e-6);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 11u);
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  EXPECT_EQ(total, kItems);
  EXPECT_EQ(buckets.back(), 0u);  // all observations <= 1.0
}

TEST(ObsHistogram, BucketEdgesAreInclusiveUpperBounds) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (inclusive upper edge)
  h.observe(1.5);   // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(100.0); // overflow
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.count(), 5u);
}

TEST(ObsRegistry, HandlesAreStableAndResetZeroesInPlace) {
  TelemetryGuard guard;
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& a = reg.counter("test/stable_handle");
  obs::Counter& b = reg.counter("test/stable_handle");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  reg.reset_values();
  EXPECT_EQ(a.value(), 0u);  // same handle, zeroed in place
  a.add(1);
  EXPECT_EQ(reg.counter("test/stable_handle").value(), 1u);
}

TEST(ObsRegistry, FirstRegistrationFixesHistogramBounds) {
  obs::Registry& reg = obs::Registry::instance();
  obs::Histogram& h1 = reg.histogram("test/fixed_bounds", {1.0, 2.0});
  obs::Histogram& h2 = reg.histogram("test/fixed_bounds", {9.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(ObsRegistry, SnapshotCoversAllMetricKinds) {
  TelemetryGuard guard;
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("test/snap_counter").add(7);
  reg.gauge("test/snap_gauge").set(2.5);
  reg.histogram("test/snap_hist", {1.0}).observe(0.5);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("test/snap_counter"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test/snap_gauge"), 2.5);
  const auto& hist = snap.histograms.at("test/snap_hist");
  EXPECT_EQ(hist.count, 1u);
  ASSERT_EQ(hist.buckets.size(), 2u);
  EXPECT_EQ(hist.buckets[0], 1u);
}

TEST(ObsKernelDispatch, RecordsFramesAndActiveFraction) {
  TelemetryGuard guard;
  obs::KernelDispatchObs kobs;
  EXPECT_FALSE(kobs.bound());
  kobs.ensure_bound("testlayer");
  ASSERT_TRUE(kobs.bound());
  kobs.record_dense_frame();
  kobs.record_frame(/*num_active=*/5, /*frame_size=*/10, /*used_sparse=*/true);
  kobs.record_frame(/*num_active=*/10, /*frame_size=*/10, /*used_sparse=*/false);
  const auto snap = obs::Registry::instance().snapshot();
  EXPECT_EQ(snap.counters.at("kernel/testlayer/dense_frames"), 2u);
  EXPECT_EQ(snap.counters.at("kernel/testlayer/sparse_frames"), 1u);
  EXPECT_EQ(snap.histograms.at("kernel/testlayer/active_fraction").count, 2u);
}

// ---------------------------------------------------------------------------
// Trace spans + Chrome export

TEST(ObsTrace, NestedSpansExportValidChromeTrace) {
  TelemetryGuard guard;
  obs::set_telemetry_enabled(true);
  {
    OBS_SPAN("test/outer");
    {
      OBS_SPAN("test/inner");
    }
  }
  obs::record_span("test/\"quoted\"\nname", 1, 2);  // exercises escaping
  const std::string json = obs::chrome_trace_json();
  const JsonValue root = parse_json(json);
  ASSERT_TRUE(root.has("traceEvents"));
  const auto& events = root.at("traceEvents").array;
  size_t outer = 0, inner = 0, quoted = 0;
  int64_t inner_ts = -1, inner_end = -1, outer_ts = -1, outer_end = -1;
  for (const auto& ev : events) {
    if (ev.at("ph").str == "M") continue;  // metadata
    EXPECT_EQ(ev.at("ph").str, "X");
    EXPECT_GE(ev.at("dur").number, 0.0);
    const std::string& name = ev.at("name").str;
    if (name == "test/outer") {
      ++outer;
      outer_ts = static_cast<int64_t>(ev.at("ts").number);
      outer_end = outer_ts + static_cast<int64_t>(ev.at("dur").number);
    } else if (name == "test/inner") {
      ++inner;
      inner_ts = static_cast<int64_t>(ev.at("ts").number);
      inner_end = inner_ts + static_cast<int64_t>(ev.at("dur").number);
    } else if (name == "test/\"quoted\"\nname") {
      ++quoted;
    }
  }
  EXPECT_EQ(outer, 1u);
  EXPECT_EQ(inner, 1u);
  EXPECT_EQ(quoted, 1u);  // escaped name round-trips through the parser
  // The inner span nests inside the outer one on the timeline.
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_end, outer_end);
}

TEST(ObsTrace, DisabledSpansRecordNothing) {
  TelemetryGuard guard;
  obs::set_telemetry_enabled(false);
  const size_t before = obs::spans_recorded();
  {
    OBS_SPAN("test/should_not_appear");
  }
  EXPECT_EQ(obs::spans_recorded(), before);
}

TEST(ObsTrace, RingOverflowDropsOldestAndCounts) {
  TelemetryGuard guard;
  obs::set_telemetry_enabled(true);
  const size_t n = obs::kRingCapacity + 100;
  for (size_t i = 0; i < n; ++i) {
    obs::record_span("test/overflow", static_cast<int64_t>(i), static_cast<int64_t>(i + 1));
  }
  EXPECT_GE(obs::spans_dropped(), 100u);
  EXPECT_LE(obs::spans_recorded(), obs::kRingCapacity);
  obs::reset_trace();
  EXPECT_EQ(obs::spans_recorded(), 0u);
  EXPECT_EQ(obs::spans_dropped(), 0u);
}

TEST(ObsTrace, SpansFromPoolThreadsSurviveInExport) {
  TelemetryGuard guard;
  obs::set_telemetry_enabled(true);
  {
    util::ThreadPool pool(4);
    util::parallel_for_dynamic(&pool, 64, 1, [&](size_t /*worker*/, size_t /*i*/) {
      OBS_SPAN("test/pool_span");
    });
  }
  // The pool is destroyed: rings must outlive their threads.
  const JsonValue root = parse_json(obs::chrome_trace_json());
  size_t count = 0;
  for (const auto& ev : root.at("traceEvents").array) {
    if (ev.at("ph").str == "X" && ev.at("name").str == "test/pool_span") ++count;
  }
  EXPECT_EQ(count, 64u);
}

// ---------------------------------------------------------------------------
// Run report

TEST(ObsReport, MetricsReportIsValidJsonWithSchema) {
  TelemetryGuard guard;
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("test/report_counter").add(42);
  reg.gauge("test/report_gauge").set(-1.5);
  reg.histogram("test/report_hist", {1.0, 2.0}).observe(1.5);
  obs::set_report_field("test_field", std::string("needs \"escaping\"\n"));
  obs::set_report_field("test_number", 3.25);
  const JsonValue root = parse_json(obs::metrics_report_json());
  EXPECT_EQ(root.at("schema").str, "snntest-metrics-v1");
  EXPECT_EQ(root.at("fields").at("test_field").str, "needs \"escaping\"\n");
  EXPECT_DOUBLE_EQ(root.at("fields").at("test_number").number, 3.25);
  EXPECT_DOUBLE_EQ(root.at("counters").at("test/report_counter").number, 42.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("test/report_gauge").number, -1.5);
  const auto& hist = root.at("histograms").at("test/report_hist");
  EXPECT_DOUBLE_EQ(hist.at("count").number, 1.0);
  ASSERT_EQ(hist.at("buckets").array.size(), 3u);
  EXPECT_DOUBLE_EQ(hist.at("buckets").array[1].number, 1.0);
}

TEST(ObsReport, WritesFilesToDisk) {
  TelemetryGuard guard;
  obs::set_telemetry_enabled(true);
  {
    OBS_SPAN("test/file_span");
  }
  const std::string trace_path = ::testing::TempDir() + "snntest_trace.json";
  const std::string metrics_path = ::testing::TempDir() + "snntest_metrics.json";
  ASSERT_TRUE(obs::write_chrome_trace(trace_path));
  ASSERT_TRUE(obs::write_metrics_report(metrics_path));
  for (const std::string& path : {trace_path, metrics_path}) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr) << path;
    std::string content;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
    std::fclose(f);
    EXPECT_NO_THROW(parse_json(content)) << path;
    std::remove(path.c_str());
  }
}

// ---------------------------------------------------------------------------
// Percentile estimation (interpolated from fixed-bucket counts)

TEST(ObsHistogram, PercentilesInterpolateKnownDistribution) {
  // 1..10 observed once each into unit-wide buckets: the estimator recovers
  // the exact quantiles of the uniform distribution.
  obs::Histogram h(obs::Histogram::linear_bounds(1.0, 10.0, 10));
  for (int v = 1; v <= 10; ++v) h.observe(static_cast<double>(v));
  EXPECT_NEAR(h.percentile(0.50), 5.0, 1e-12);
  EXPECT_NEAR(h.percentile(0.95), 9.5, 1e-12);
  EXPECT_NEAR(h.percentile(0.10), 1.0, 1e-12);
  EXPECT_NEAR(h.percentile(1.00), 10.0, 1e-12);
  // q clamps instead of extrapolating.
  EXPECT_NEAR(h.percentile(-0.5), h.percentile(0.0), 1e-12);
  EXPECT_NEAR(h.percentile(7.0), 10.0, 1e-12);
}

TEST(ObsHistogram, PercentileHandlesSkewOverflowAndEmpty) {
  obs::Histogram h({1.0, 2.0, 4.0});
  EXPECT_TRUE(std::isnan(h.percentile(0.5)));  // empty histogram
  for (int i = 0; i < 99; ++i) h.observe(0.5);
  h.observe(100.0);  // one overflow observation
  // 99% of the mass sits in bucket 0, so the median interpolates inside it.
  const double p50 = h.percentile(0.50);
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, 1.0);
  // The overflow bucket has no upper edge: estimates clamp to bounds.back().
  EXPECT_NEAR(h.percentile(0.999), 4.0, 1e-12);
  // Snapshot percentiles agree with the live histogram.
  obs::Registry::HistogramSnapshot snap;
  snap.bounds = h.bounds();
  snap.buckets = h.bucket_counts();
  snap.count = h.count();
  EXPECT_NEAR(snap.percentile(0.5), p50, 1e-12);
}

TEST(ObsHistogram, PercentileRejectsMalformedInput) {
  EXPECT_TRUE(std::isnan(obs::histogram_percentile({}, {1}, 0.5)));
  EXPECT_TRUE(std::isnan(obs::histogram_percentile({1.0}, {1}, 0.5)));  // missing overflow
}

// ---------------------------------------------------------------------------
// Concurrent registry snapshotting (exercised under the TSan preset too):
// snapshots taken while writers hammer the metrics must be internally
// consistent enough to publish — counts monotonic, and exact once writers
// stop. (A histogram's buckets/count/sum are three separate relaxed adds, so
// mid-flight bucket-sum == count is deliberately NOT asserted.)

TEST(ObsRegistry, SnapshotWhileWritersRunIsMonotonicAndExactAtQuiescence) {
  TelemetryGuard guard;
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& c = reg.counter("test/concurrent_snap_counter");
  obs::Histogram& h =
      reg.histogram("test/concurrent_snap_hist", obs::Histogram::linear_bounds(0.1, 1.0, 10));
  constexpr size_t kWriters = 4;
  constexpr size_t kPerWriter = 25000;
  std::atomic<bool> go{false};
  std::vector<std::thread> writers;
  for (size_t w = 0; w < kWriters; ++w) {
    writers.emplace_back([&] {
      while (!go.load()) {
      }
      for (size_t i = 0; i < kPerWriter; ++i) {
        c.add(1);
        h.observe(0.35);
      }
    });
  }
  go.store(true);
  uint64_t last_count = 0;
  for (int s = 0; s < 200; ++s) {
    const auto snap = reg.snapshot();
    const uint64_t count = snap.counters.at("test/concurrent_snap_counter");
    EXPECT_GE(count, last_count) << "snapshot went backwards";
    EXPECT_LE(count, kWriters * kPerWriter);
    last_count = count;
  }
  for (auto& t : writers) t.join();
  const auto final_snap = reg.snapshot();
  EXPECT_EQ(final_snap.counters.at("test/concurrent_snap_counter"), kWriters * kPerWriter);
  const auto& hist = final_snap.histograms.at("test/concurrent_snap_hist");
  EXPECT_EQ(hist.count, kWriters * kPerWriter);
  uint64_t bucket_total = 0;
  for (uint64_t b : hist.buckets) bucket_total += b;
  EXPECT_EQ(bucket_total, kWriters * kPerWriter);
}

// ---------------------------------------------------------------------------
// Cross-process trace merging

TEST(ObsTraceMerge, MergesPidMapsAndAlignsEpochs) {
  const std::string dir = ::testing::TempDir();
  const std::string a_path = dir + "snntest_merge_a.json";
  const std::string b_path = dir + "snntest_merge_b.json";
  // Two hand-crafted worker traces whose steady clocks started at different
  // wall times: epoch alignment must shift B's events +1000us relative to A.
  std::ofstream(a_path) << R"({"traceEvents":[)"
                        << R"({"name":"process_name","ph":"M","pid":1,"tid":0,)"
                        << R"("args":{"name":"stale"}},)"
                        << R"({"name":"a_span","ph":"X","pid":1,"tid":1,"ts":10,"dur":5}],)"
                        << R"("otherData":{"trace_epoch_unix_us":5000}})";
  std::ofstream(b_path) << R"({"traceEvents":[)"
                        << R"({"name":"b_span","ph":"X","pid":1,"tid":1,"ts":20,"dur":5}],)"
                        << R"("otherData":{"trace_epoch_unix_us":6000}})";
  obs::TraceMergeStats stats;
  const std::string merged =
      obs::merge_chrome_traces({{a_path, "shard A"}, {b_path, "shard B"}}, &stats);
  EXPECT_EQ(stats.inputs_merged, 2u);
  EXPECT_EQ(stats.inputs_skipped, 0u);
  const JsonValue root = parse_json(merged);
  double a_ts = -1, b_ts = -1, a_pid = -1, b_pid = -1;
  std::map<double, std::string> process_names;
  for (const auto& ev : root.at("traceEvents").array) {
    if (ev.at("ph").str == "M") {
      EXPECT_EQ(ev.at("name").str, "process_name");
      process_names[ev.at("pid").number] = ev.at("args").at("name").str;
      continue;
    }
    if (ev.at("name").str == "a_span") {
      a_ts = ev.at("ts").number;
      a_pid = ev.at("pid").number;
    } else if (ev.at("name").str == "b_span") {
      b_ts = ev.at("ts").number;
      b_pid = ev.at("pid").number;
    }
  }
  // Input i maps to pid i+1; the source trace's own process_name metadata is
  // replaced by the caller-supplied labels.
  EXPECT_EQ(a_pid, 1.0);
  EXPECT_EQ(b_pid, 2.0);
  EXPECT_EQ(process_names.at(1.0), "shard A");
  EXPECT_EQ(process_names.at(2.0), "shard B");
  // A's epoch is earliest (5000); B's events shift by the 1000us delta.
  EXPECT_DOUBLE_EQ(a_ts, 10.0);
  EXPECT_DOUBLE_EQ(b_ts, 20.0 + 1000.0);
  std::remove(a_path.c_str());
  std::remove(b_path.c_str());
}

TEST(ObsTraceMerge, FailsSoftOnMissingAndGarbageInputs) {
  const std::string dir = ::testing::TempDir();
  const std::string good_path = dir + "snntest_merge_good.json";
  const std::string garbage_path = dir + "snntest_merge_garbage.json";
  std::ofstream(good_path) << R"({"traceEvents":[)"
                           << R"({"name":"ok","ph":"X","pid":1,"tid":1,"ts":1,"dur":1}]})";
  std::ofstream(garbage_path) << "{\"traceEvents\": this is not json";
  obs::TraceMergeStats stats;
  const std::string merged = obs::merge_chrome_traces({{good_path, "good"},
                                                       {dir + "snntest_merge_absent.json", "gone"},
                                                       {garbage_path, "garbage"}},
                                                      &stats);
  EXPECT_EQ(stats.inputs_merged, 1u);
  EXPECT_EQ(stats.inputs_skipped, 2u);
  EXPECT_EQ(stats.events, 1u);
  const JsonValue root = parse_json(merged);  // still a valid trace
  size_t payload = 0;
  for (const auto& ev : root.at("traceEvents").array) {
    if (ev.at("ph").str == "X") ++payload;
  }
  EXPECT_EQ(payload, 1u);
  std::remove(good_path.c_str());
  std::remove(garbage_path.c_str());
}

TEST(ObsTraceMerge, RoundTripsRealWorkerTraces) {
  TelemetryGuard guard;
  obs::set_telemetry_enabled(true);
  {
    OBS_SPAN("test/merge_roundtrip");
  }
  const std::string dir = ::testing::TempDir();
  const std::string path = dir + "snntest_merge_real.json";
  ASSERT_TRUE(obs::write_chrome_trace(path));
  obs::TraceMergeStats stats;
  const std::string out = dir + "snntest_merge_real_out.json";
  ASSERT_TRUE(obs::write_merged_chrome_trace(out, {{path, "worker"}}, &stats));
  EXPECT_EQ(stats.inputs_merged, 1u);
  EXPECT_GE(stats.events, 1u);
  std::ifstream in(out);
  std::stringstream buf;
  buf << in.rdbuf();
  const JsonValue root = parse_json(buf.str());
  bool found = false;
  for (const auto& ev : root.at("traceEvents").array) {
    if (ev.at("ph").str == "X" && ev.at("name").str == "test/merge_roundtrip") found = true;
  }
  EXPECT_TRUE(found);
  std::remove(path.c_str());
  std::remove(out.c_str());
}

// ---------------------------------------------------------------------------
// Environment provenance in the run report

TEST(ObsReport, ReportCarriesHardwareAndSimdProvenance) {
  TelemetryGuard guard;
  tensor::simd::lane_ops();  // force dispatch resolution (sets simd_backend)
  const JsonValue root = parse_json(obs::metrics_report_json());
  const auto& fields = root.at("fields");
  ASSERT_TRUE(fields.has("hardware_threads"));
  // Rendered as a bare JSON number at report time.
  EXPECT_DOUBLE_EQ(fields.at("hardware_threads").number,
                   static_cast<double>(std::thread::hardware_concurrency()));
  ASSERT_TRUE(fields.has("simd_backend"));
  EXPECT_EQ(fields.at("simd_backend").str,
            tensor::simd::backend_name(tensor::simd::active_backend()));
}

TEST(ObsReport, ExplicitFieldOverridesRenderTimeProvenance) {
  TelemetryGuard guard;
  obs::set_report_field("hardware_threads", std::string("overridden"));
  const JsonValue root = parse_json(obs::metrics_report_json());
  EXPECT_EQ(root.at("fields").at("hardware_threads").str, "overridden");
  // Restore the render-time default for other tests (last write wins); the
  // uint64 overload renders the same bare number the default does.
  obs::set_report_field("hardware_threads",
                        static_cast<uint64_t>(std::thread::hardware_concurrency()));
}

// ---------------------------------------------------------------------------
// Disabled-path overhead

TEST(ObsOverhead, DisabledTelemetryIsCheap) {
  TelemetryGuard guard;
  obs::set_telemetry_enabled(false);
  obs::Counter& c = obs::Registry::instance().counter("test/overhead_counter");
  util::Timer timer;
  constexpr size_t kIters = 1000000;
  for (size_t i = 0; i < kIters; ++i) {
    OBS_SPAN("test/overhead_span");  // disabled: one relaxed load + branch
    if (obs::telemetry_enabled()) c.add(1);
  }
  // Generous bound — a debug build on a loaded CI box still passes, but an
  // accidentally-hot disabled path (lock, allocation, clock read) fails.
  EXPECT_LT(timer.seconds(), 2.0);
  EXPECT_EQ(c.value(), 0u);
}

// ---------------------------------------------------------------------------
// Determinism contract: byte-identity with telemetry on vs. off

snn::Network make_net(uint64_t seed = 1) {
  util::Rng rng(seed);
  snn::LifParams lif;
  snn::Network net("obs-identity-net");
  auto l1 = std::make_unique<snn::DenseLayer>(10, 16, lif);
  l1->init_weights(rng, 1.2f);
  net.add_layer(std::move(l1));
  auto l2 = std::make_unique<snn::DenseLayer>(16, 5, lif);
  l2->init_weights(rng, 1.2f);
  net.add_layer(std::move(l2));
  return net;
}

tensor::Tensor generate_stimulus() {
  auto net = make_net();
  core::TestGenConfig cfg;
  cfg.steps_stage1 = 40;
  cfg.max_iterations = 2;
  cfg.restarts = 2;
  cfg.num_threads = 2;
  cfg.t_limit_seconds = 30.0;
  cfg.eval_every = 2;
  cfg.t_in_start = 4;
  cfg.t_in_max = 16;
  core::TestGenerator generator(net, cfg);
  return generator.generate().stimulus.assemble();
}

TEST(ObsIdentity, TestgenStimulusBitIdenticalWithTelemetryOnAndOff) {
  TelemetryGuard guard;
  obs::set_telemetry_enabled(false);
  const tensor::Tensor off = generate_stimulus();
  obs::set_telemetry_enabled(true);
  const tensor::Tensor on = generate_stimulus();
  ASSERT_EQ(off.numel(), on.numel());
  ASSERT_GT(off.numel(), 0u);
  EXPECT_EQ(std::memcmp(off.data(), on.data(), off.numel() * sizeof(float)), 0)
      << "telemetry fed back into test generation";
}

TEST(ObsIdentity, CampaignResultsBitIdenticalWithTelemetryOnAndOff) {
  TelemetryGuard guard;
  auto net = make_net(3);
  util::Rng stim_rng(11);
  const auto stimulus = snn::random_spike_train(24, net.input_size(), 0.3, stim_rng);
  auto faults = fault::enumerate_faults(net);
  ASSERT_FALSE(faults.empty());
  campaign::EngineConfig cfg;
  cfg.num_threads = 2;

  obs::set_telemetry_enabled(false);
  const auto off = campaign::run_campaign(net, stimulus, faults, cfg);
  obs::set_telemetry_enabled(true);
  const auto on = campaign::run_campaign(net, stimulus, faults, cfg);

  ASSERT_EQ(off.results.size(), on.results.size());
  for (size_t i = 0; i < off.results.size(); ++i) {
    EXPECT_EQ(off.results[i].detected, on.results[i].detected) << "fault " << i;
    EXPECT_EQ(off.results[i].output_l1, on.results[i].output_l1) << "fault " << i;
    EXPECT_EQ(off.results[i].class_count_diff, on.results[i].class_count_diff) << "fault " << i;
  }
  EXPECT_EQ(off.stats.layer_forwards, on.stats.layer_forwards);
  EXPECT_EQ(off.stats.faults_pruned, on.stats.faults_pruned);
}

}  // namespace
}  // namespace snntest
