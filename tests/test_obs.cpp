// Telemetry subsystem tests (DESIGN.md §11): registry aggregation under
// concurrent increments, histogram bucket semantics, span rings + Chrome
// trace-event export (parsed back with a minimal JSON parser), run-report
// JSON, disabled-path overhead, and the determinism contract — the testgen
// stimulus and campaign results must be byte-identical with telemetry on
// vs. off.
#include <gtest/gtest.h>

#include <cctype>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "campaign/engine.hpp"
#include "core/test_generator.hpp"
#include "fault/registry.hpp"
#include "obs/metrics.hpp"
#include "obs/report.hpp"
#include "obs/trace.hpp"
#include "snn/dense_layer.hpp"
#include "snn/spike_train.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace snntest {
namespace {

// ---------------------------------------------------------------------------
// Minimal strict JSON parser — enough to validate and navigate the files the
// subsystem emits, with no third-party dependency.
struct JsonValue {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind = kNull;
  bool boolean = false;
  double number = 0.0;
  std::string str;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  const JsonValue& at(const std::string& key) const {
    auto it = object.find(key);
    if (it == object.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  bool has(const std::string& key) const { return object.count(key) != 0; }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) throw std::runtime_error("trailing characters");
    return v;
  }

 private:
  const std::string& s_;
  size_t pos_ = 0;

  [[noreturn]] void fail(const char* what) {
    throw std::runtime_error(std::string(what) + " at offset " + std::to_string(pos_));
  }
  void skip_ws() {
    while (pos_ < s_.size() && std::isspace(static_cast<unsigned char>(s_[pos_]))) ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (pos_ >= s_.size() || s_[pos_] != c) fail("unexpected character");
    ++pos_;
  }
  bool consume(const char* lit) {
    const size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  JsonValue value() {
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"':
        v.kind = JsonValue::kString;
        v.str = string();
        return v;
      case 't':
        if (!consume("true")) fail("bad literal");
        v.kind = JsonValue::kBool;
        v.boolean = true;
        return v;
      case 'f':
        if (!consume("false")) fail("bad literal");
        v.kind = JsonValue::kBool;
        return v;
      case 'n':
        if (!consume("null")) fail("bad literal");
        return v;
      default: return number();
    }
  }

  JsonValue object() {
    JsonValue v;
    v.kind = JsonValue::kObject;
    expect('{');
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.object[std::move(key)] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    JsonValue v;
    v.kind = JsonValue::kArray;
    expect('[');
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control char in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= s_.size()) fail("dangling escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u digit");
          }
          if (code < 0x80) out.push_back(static_cast<char>(code));
          else out.push_back('?');  // non-ASCII: presence is all the tests check
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue number() {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    JsonValue v;
    v.kind = JsonValue::kNumber;
    try {
      v.number = std::stod(s_.substr(start, pos_ - start));
    } catch (...) {
      fail("bad number");
    }
    return v;
  }
};

// Restores the telemetry flag and clears metric/trace state around a test.
struct TelemetryGuard {
  bool prev = obs::telemetry_enabled();
  TelemetryGuard() {
    obs::Registry::instance().reset_values();
    obs::reset_trace();
  }
  ~TelemetryGuard() {
    obs::set_telemetry_enabled(prev);
    obs::Registry::instance().reset_values();
    obs::reset_trace();
  }
};

// ---------------------------------------------------------------------------
// Metrics registry

TEST(ObsCounter, AggregatesAcrossThreads) {
  TelemetryGuard guard;
  obs::Counter& c = obs::Registry::instance().counter("test/parallel_adds");
  const uint64_t before = c.value();
  util::ThreadPool pool(8);
  constexpr size_t kItems = 20000;
  util::parallel_for_dynamic(&pool, kItems, /*grain=*/7,
                             [&](size_t /*worker*/, size_t /*i*/) { c.add(1); });
  EXPECT_EQ(c.value() - before, kItems);
}

TEST(ObsHistogram, AggregatesAcrossThreads) {
  TelemetryGuard guard;
  obs::Histogram& h = obs::Registry::instance().histogram(
      "test/parallel_observe", obs::Histogram::linear_bounds(0.1, 1.0, 10));
  util::ThreadPool pool(8);
  constexpr size_t kItems = 10000;
  util::parallel_for_dynamic(&pool, kItems, /*grain=*/3, [&](size_t /*worker*/, size_t i) {
    h.observe(static_cast<double>(i % 10) * 0.1 + 0.05);
  });
  EXPECT_EQ(h.count(), kItems);
  // Sum of (i%10)*0.1 + 0.05 over 10000 items = 1000 * (0+...+0.9) + 500.
  EXPECT_NEAR(h.sum(), 1000.0 * 4.5 + 500.0, 1e-6);
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 11u);
  uint64_t total = 0;
  for (uint64_t b : buckets) total += b;
  EXPECT_EQ(total, kItems);
  EXPECT_EQ(buckets.back(), 0u);  // all observations <= 1.0
}

TEST(ObsHistogram, BucketEdgesAreInclusiveUpperBounds) {
  obs::Histogram h({1.0, 2.0, 4.0});
  h.observe(0.5);   // bucket 0
  h.observe(1.0);   // bucket 0 (inclusive upper edge)
  h.observe(1.5);   // bucket 1
  h.observe(4.0);   // bucket 2
  h.observe(100.0); // overflow
  const auto buckets = h.bucket_counts();
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(h.count(), 5u);
}

TEST(ObsRegistry, HandlesAreStableAndResetZeroesInPlace) {
  TelemetryGuard guard;
  obs::Registry& reg = obs::Registry::instance();
  obs::Counter& a = reg.counter("test/stable_handle");
  obs::Counter& b = reg.counter("test/stable_handle");
  EXPECT_EQ(&a, &b);
  a.add(3);
  EXPECT_EQ(b.value(), 3u);
  reg.reset_values();
  EXPECT_EQ(a.value(), 0u);  // same handle, zeroed in place
  a.add(1);
  EXPECT_EQ(reg.counter("test/stable_handle").value(), 1u);
}

TEST(ObsRegistry, FirstRegistrationFixesHistogramBounds) {
  obs::Registry& reg = obs::Registry::instance();
  obs::Histogram& h1 = reg.histogram("test/fixed_bounds", {1.0, 2.0});
  obs::Histogram& h2 = reg.histogram("test/fixed_bounds", {9.0});
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(ObsRegistry, SnapshotCoversAllMetricKinds) {
  TelemetryGuard guard;
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("test/snap_counter").add(7);
  reg.gauge("test/snap_gauge").set(2.5);
  reg.histogram("test/snap_hist", {1.0}).observe(0.5);
  const auto snap = reg.snapshot();
  EXPECT_EQ(snap.counters.at("test/snap_counter"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauges.at("test/snap_gauge"), 2.5);
  const auto& hist = snap.histograms.at("test/snap_hist");
  EXPECT_EQ(hist.count, 1u);
  ASSERT_EQ(hist.buckets.size(), 2u);
  EXPECT_EQ(hist.buckets[0], 1u);
}

TEST(ObsKernelDispatch, RecordsFramesAndActiveFraction) {
  TelemetryGuard guard;
  obs::KernelDispatchObs kobs;
  EXPECT_FALSE(kobs.bound());
  kobs.ensure_bound("testlayer");
  ASSERT_TRUE(kobs.bound());
  kobs.record_dense_frame();
  kobs.record_frame(/*num_active=*/5, /*frame_size=*/10, /*used_sparse=*/true);
  kobs.record_frame(/*num_active=*/10, /*frame_size=*/10, /*used_sparse=*/false);
  const auto snap = obs::Registry::instance().snapshot();
  EXPECT_EQ(snap.counters.at("kernel/testlayer/dense_frames"), 2u);
  EXPECT_EQ(snap.counters.at("kernel/testlayer/sparse_frames"), 1u);
  EXPECT_EQ(snap.histograms.at("kernel/testlayer/active_fraction").count, 2u);
}

// ---------------------------------------------------------------------------
// Trace spans + Chrome export

TEST(ObsTrace, NestedSpansExportValidChromeTrace) {
  TelemetryGuard guard;
  obs::set_telemetry_enabled(true);
  {
    OBS_SPAN("test/outer");
    {
      OBS_SPAN("test/inner");
    }
  }
  obs::record_span("test/\"quoted\"\nname", 1, 2);  // exercises escaping
  const std::string json = obs::chrome_trace_json();
  const JsonValue root = JsonParser(json).parse();
  ASSERT_TRUE(root.has("traceEvents"));
  const auto& events = root.at("traceEvents").array;
  size_t outer = 0, inner = 0, quoted = 0;
  int64_t inner_ts = -1, inner_end = -1, outer_ts = -1, outer_end = -1;
  for (const auto& ev : events) {
    if (ev.at("ph").str == "M") continue;  // metadata
    EXPECT_EQ(ev.at("ph").str, "X");
    EXPECT_GE(ev.at("dur").number, 0.0);
    const std::string& name = ev.at("name").str;
    if (name == "test/outer") {
      ++outer;
      outer_ts = static_cast<int64_t>(ev.at("ts").number);
      outer_end = outer_ts + static_cast<int64_t>(ev.at("dur").number);
    } else if (name == "test/inner") {
      ++inner;
      inner_ts = static_cast<int64_t>(ev.at("ts").number);
      inner_end = inner_ts + static_cast<int64_t>(ev.at("dur").number);
    } else if (name == "test/\"quoted\"\nname") {
      ++quoted;
    }
  }
  EXPECT_EQ(outer, 1u);
  EXPECT_EQ(inner, 1u);
  EXPECT_EQ(quoted, 1u);  // escaped name round-trips through the parser
  // The inner span nests inside the outer one on the timeline.
  EXPECT_GE(inner_ts, outer_ts);
  EXPECT_LE(inner_end, outer_end);
}

TEST(ObsTrace, DisabledSpansRecordNothing) {
  TelemetryGuard guard;
  obs::set_telemetry_enabled(false);
  const size_t before = obs::spans_recorded();
  {
    OBS_SPAN("test/should_not_appear");
  }
  EXPECT_EQ(obs::spans_recorded(), before);
}

TEST(ObsTrace, RingOverflowDropsOldestAndCounts) {
  TelemetryGuard guard;
  obs::set_telemetry_enabled(true);
  const size_t n = obs::kRingCapacity + 100;
  for (size_t i = 0; i < n; ++i) {
    obs::record_span("test/overflow", static_cast<int64_t>(i), static_cast<int64_t>(i + 1));
  }
  EXPECT_GE(obs::spans_dropped(), 100u);
  EXPECT_LE(obs::spans_recorded(), obs::kRingCapacity);
  obs::reset_trace();
  EXPECT_EQ(obs::spans_recorded(), 0u);
  EXPECT_EQ(obs::spans_dropped(), 0u);
}

TEST(ObsTrace, SpansFromPoolThreadsSurviveInExport) {
  TelemetryGuard guard;
  obs::set_telemetry_enabled(true);
  {
    util::ThreadPool pool(4);
    util::parallel_for_dynamic(&pool, 64, 1, [&](size_t /*worker*/, size_t /*i*/) {
      OBS_SPAN("test/pool_span");
    });
  }
  // The pool is destroyed: rings must outlive their threads.
  const JsonValue root = JsonParser(obs::chrome_trace_json()).parse();
  size_t count = 0;
  for (const auto& ev : root.at("traceEvents").array) {
    if (ev.at("ph").str == "X" && ev.at("name").str == "test/pool_span") ++count;
  }
  EXPECT_EQ(count, 64u);
}

// ---------------------------------------------------------------------------
// Run report

TEST(ObsReport, MetricsReportIsValidJsonWithSchema) {
  TelemetryGuard guard;
  obs::Registry& reg = obs::Registry::instance();
  reg.counter("test/report_counter").add(42);
  reg.gauge("test/report_gauge").set(-1.5);
  reg.histogram("test/report_hist", {1.0, 2.0}).observe(1.5);
  obs::set_report_field("test_field", std::string("needs \"escaping\"\n"));
  obs::set_report_field("test_number", 3.25);
  const JsonValue root = JsonParser(obs::metrics_report_json()).parse();
  EXPECT_EQ(root.at("schema").str, "snntest-metrics-v1");
  EXPECT_EQ(root.at("fields").at("test_field").str, "needs \"escaping\"\n");
  EXPECT_DOUBLE_EQ(root.at("fields").at("test_number").number, 3.25);
  EXPECT_DOUBLE_EQ(root.at("counters").at("test/report_counter").number, 42.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("test/report_gauge").number, -1.5);
  const auto& hist = root.at("histograms").at("test/report_hist");
  EXPECT_DOUBLE_EQ(hist.at("count").number, 1.0);
  ASSERT_EQ(hist.at("buckets").array.size(), 3u);
  EXPECT_DOUBLE_EQ(hist.at("buckets").array[1].number, 1.0);
}

TEST(ObsReport, WritesFilesToDisk) {
  TelemetryGuard guard;
  obs::set_telemetry_enabled(true);
  {
    OBS_SPAN("test/file_span");
  }
  const std::string trace_path = ::testing::TempDir() + "snntest_trace.json";
  const std::string metrics_path = ::testing::TempDir() + "snntest_metrics.json";
  ASSERT_TRUE(obs::write_chrome_trace(trace_path));
  ASSERT_TRUE(obs::write_metrics_report(metrics_path));
  for (const std::string& path : {trace_path, metrics_path}) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    ASSERT_NE(f, nullptr) << path;
    std::string content;
    char buf[4096];
    size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) content.append(buf, n);
    std::fclose(f);
    EXPECT_NO_THROW(JsonParser(content).parse()) << path;
    std::remove(path.c_str());
  }
}

// ---------------------------------------------------------------------------
// Disabled-path overhead

TEST(ObsOverhead, DisabledTelemetryIsCheap) {
  TelemetryGuard guard;
  obs::set_telemetry_enabled(false);
  obs::Counter& c = obs::Registry::instance().counter("test/overhead_counter");
  util::Timer timer;
  constexpr size_t kIters = 1000000;
  for (size_t i = 0; i < kIters; ++i) {
    OBS_SPAN("test/overhead_span");  // disabled: one relaxed load + branch
    if (obs::telemetry_enabled()) c.add(1);
  }
  // Generous bound — a debug build on a loaded CI box still passes, but an
  // accidentally-hot disabled path (lock, allocation, clock read) fails.
  EXPECT_LT(timer.seconds(), 2.0);
  EXPECT_EQ(c.value(), 0u);
}

// ---------------------------------------------------------------------------
// Determinism contract: byte-identity with telemetry on vs. off

snn::Network make_net(uint64_t seed = 1) {
  util::Rng rng(seed);
  snn::LifParams lif;
  snn::Network net("obs-identity-net");
  auto l1 = std::make_unique<snn::DenseLayer>(10, 16, lif);
  l1->init_weights(rng, 1.2f);
  net.add_layer(std::move(l1));
  auto l2 = std::make_unique<snn::DenseLayer>(16, 5, lif);
  l2->init_weights(rng, 1.2f);
  net.add_layer(std::move(l2));
  return net;
}

tensor::Tensor generate_stimulus() {
  auto net = make_net();
  core::TestGenConfig cfg;
  cfg.steps_stage1 = 40;
  cfg.max_iterations = 2;
  cfg.restarts = 2;
  cfg.num_threads = 2;
  cfg.t_limit_seconds = 30.0;
  cfg.eval_every = 2;
  cfg.t_in_start = 4;
  cfg.t_in_max = 16;
  core::TestGenerator generator(net, cfg);
  return generator.generate().stimulus.assemble();
}

TEST(ObsIdentity, TestgenStimulusBitIdenticalWithTelemetryOnAndOff) {
  TelemetryGuard guard;
  obs::set_telemetry_enabled(false);
  const tensor::Tensor off = generate_stimulus();
  obs::set_telemetry_enabled(true);
  const tensor::Tensor on = generate_stimulus();
  ASSERT_EQ(off.numel(), on.numel());
  ASSERT_GT(off.numel(), 0u);
  EXPECT_EQ(std::memcmp(off.data(), on.data(), off.numel() * sizeof(float)), 0)
      << "telemetry fed back into test generation";
}

TEST(ObsIdentity, CampaignResultsBitIdenticalWithTelemetryOnAndOff) {
  TelemetryGuard guard;
  auto net = make_net(3);
  util::Rng stim_rng(11);
  const auto stimulus = snn::random_spike_train(24, net.input_size(), 0.3, stim_rng);
  auto faults = fault::enumerate_faults(net);
  ASSERT_FALSE(faults.empty());
  campaign::EngineConfig cfg;
  cfg.num_threads = 2;

  obs::set_telemetry_enabled(false);
  const auto off = campaign::run_campaign(net, stimulus, faults, cfg);
  obs::set_telemetry_enabled(true);
  const auto on = campaign::run_campaign(net, stimulus, faults, cfg);

  ASSERT_EQ(off.results.size(), on.results.size());
  for (size_t i = 0; i < off.results.size(); ++i) {
    EXPECT_EQ(off.results[i].detected, on.results[i].detected) << "fault " << i;
    EXPECT_EQ(off.results[i].output_l1, on.results[i].output_l1) << "fault " << i;
    EXPECT_EQ(off.results[i].class_count_diff, on.results[i].class_count_diff) << "fault " << i;
  }
  EXPECT_EQ(off.stats.layer_forwards, on.stats.layer_forwards);
  EXPECT_EQ(off.stats.faults_pruned, on.stats.faults_pruned);
}

}  // namespace
}  // namespace snntest
