// Coverage-subsystem tests: fault-dictionary persistence (round trip,
// truncated tail, flipped CRC byte, corrupt header, merge of overlapping
// dictionaries), incremental-campaign identity (warm re-run == cold run,
// bit-identical, across lane widths), stale-dictionary rejection, the
// minimum-time minimizer (full detectable coverage, determinism, documented
// tie-breaking), and first_detection_frame semantics.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "campaign/engine.hpp"
#include "coverage/fault_dictionary.hpp"
#include "coverage/incremental.hpp"
#include "coverage/minimize.hpp"
#include "fault/registry.hpp"
#include "snn/dense_layer.hpp"
#include "snn/spike_train.hpp"

namespace snntest::coverage {
namespace {

snn::Network make_net(uint64_t seed = 11) {
  util::Rng rng(seed);
  snn::LifParams lif;
  snn::Network net("coverage-test");
  auto l1 = std::make_unique<snn::DenseLayer>(8, 16, lif);
  l1->init_weights(rng, 1.3f);
  net.add_layer(std::move(l1));
  auto l2 = std::make_unique<snn::DenseLayer>(16, 12, lif);
  l2->init_weights(rng, 1.3f);
  net.add_layer(std::move(l2));
  auto l3 = std::make_unique<snn::DenseLayer>(12, 4, lif);
  l3->init_weights(rng, 1.3f);
  net.add_layer(std::move(l3));
  return net;
}

tensor::Tensor busy_input(size_t T = 20, size_t n = 8, uint64_t seed = 5) {
  util::Rng rng(seed);
  return snn::random_spike_train(T, n, 0.5, rng);
}

std::vector<fault::FaultDescriptor> sampled_universe(snn::Network& net, size_t k = 80,
                                                     uint64_t seed = 17) {
  auto universe = fault::enumerate_faults(net);
  util::Rng rng(seed);
  return fault::sample_faults(universe, k, rng);
}

fault::DetectionResult make_result(bool detected, double l1, int64_t frame,
                                   std::vector<long> diff = {}) {
  fault::DetectionResult r;
  r.detected = detected;
  r.output_l1 = l1;
  r.first_detection_frame = frame;
  r.class_count_diff = std::move(diff);
  return r;
}

StimulusEntry make_entry(const std::string& name, uint64_t fingerprint, uint64_t frames) {
  StimulusEntry e;
  e.name = name;
  e.fingerprint = fingerprint;
  e.duration_frames = frames;
  return e;
}

/// A hand-built dictionary: `detects[s]` lists the faults stimulus s
/// detects (other pairs are recorded undetected), `costs[s]` its frames.
FaultDictionary synthetic_dict(size_t num_faults, const std::vector<std::vector<size_t>>& detects,
                               const std::vector<uint64_t>& costs) {
  FaultDictionary dict;
  dict.model_fingerprint = 0xABCD;
  dict.universe_fingerprint = 0x1234;
  dict.num_faults = num_faults;
  for (size_t s = 0; s < detects.size(); ++s) {
    dict.add_stimulus(make_entry("stim" + std::to_string(s), 1000 + s, costs[s]));
    std::vector<char> hit(num_faults, 0);
    for (size_t f : detects[s]) hit[f] = 1;
    for (size_t f = 0; f < num_faults; ++f) {
      dict.record(s, f, make_result(hit[f] != 0, hit[f] ? 3.0 : 0.0, hit[f] ? 2 : -1));
    }
  }
  return dict;
}

std::string temp_path(const std::string& name) { return testing::TempDir() + name; }

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void spit(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

void expect_dicts_equal(const FaultDictionary& a, const FaultDictionary& b) {
  EXPECT_TRUE(a.compatible_with(b));
  EXPECT_EQ(a.schedule_ordered, b.schedule_ordered);
  ASSERT_EQ(a.num_stimuli(), b.num_stimuli());
  ASSERT_EQ(a.num_records(), b.num_records());
  for (size_t s = 0; s < a.num_stimuli(); ++s) {
    const auto& ea = a.stimulus(s);
    const auto& eb = b.stimulus(s);
    EXPECT_EQ(ea.name, eb.name);
    EXPECT_EQ(ea.fingerprint, eb.fingerprint);
    EXPECT_EQ(ea.duration_frames, eb.duration_frames);
    ASSERT_EQ(ea.data.numel(), eb.data.numel());
    for (size_t i = 0; i < ea.data.numel(); ++i) EXPECT_EQ(ea.data[i], eb.data[i]);
    for (size_t f = 0; f < a.num_faults; ++f) {
      ASSERT_EQ(a.has(s, f), b.has(s, f)) << s << "," << f;
      if (a.has(s, f)) {
        EXPECT_TRUE(results_identical(*a.lookup(s, f), *b.lookup(s, f))) << s << "," << f;
      }
    }
  }
}

// --- in-memory matrix ------------------------------------------------------

TEST(Dictionary, RecordLookupAndAggregates) {
  FaultDictionary dict = synthetic_dict(5, {{0, 2}, {2, 4}}, {10, 20});
  EXPECT_EQ(dict.num_stimuli(), 2u);
  EXPECT_EQ(dict.num_records(), 10u);
  EXPECT_EQ(dict.records_for(0), 5u);
  EXPECT_TRUE(dict.has(0, 2));
  EXPECT_FALSE(dict.has(2, 0));  // out-of-range stimulus
  ASSERT_NE(dict.lookup(0, 0), nullptr);
  EXPECT_TRUE(dict.lookup(0, 0)->detected);
  EXPECT_FALSE(dict.lookup(0, 1)->detected);
  EXPECT_EQ(dict.detected_faults(0), (std::vector<size_t>{0, 2}));
  EXPECT_EQ(dict.detected_faults(1), (std::vector<size_t>{2, 4}));
  EXPECT_EQ(dict.detectable_count(), 3u);  // {0, 2, 4}
  // Overwriting an existing pair does not double-count.
  dict.record(0, 0, make_result(false, 0.0, -1));
  EXPECT_EQ(dict.num_records(), 10u);
  EXPECT_FALSE(dict.lookup(0, 0)->detected);
  // Duplicate fingerprints dedupe to the first entry.
  EXPECT_EQ(dict.add_stimulus(make_entry("dup", 1000, 99)), 0u);
  EXPECT_EQ(dict.num_stimuli(), 2u);
  EXPECT_THROW(dict.record(0, 99, make_result(true, 1.0, 0)), std::out_of_range);
}

TEST(Dictionary, ResultsIdenticalIsFieldExact) {
  const auto base = make_result(true, 3.5, 2, {1, -1});
  EXPECT_TRUE(results_identical(base, base));
  auto r = base;
  r.detected = false;
  EXPECT_FALSE(results_identical(base, r));
  r = base;
  r.output_l1 = 3.5000000000000004;  // one ulp away
  EXPECT_FALSE(results_identical(base, r));
  r = base;
  r.first_detection_frame = 3;
  EXPECT_FALSE(results_identical(base, r));
  r = base;
  r.class_count_diff = {1, 0};
  EXPECT_FALSE(results_identical(base, r));
}

// --- persistence -----------------------------------------------------------

TEST(Dictionary, SaveLoadRoundTripIncludingEmbeddedStimuli) {
  FaultDictionary dict = synthetic_dict(6, {{0, 1}, {3}}, {12, 7});
  dict.detection_threshold = 0.25;
  dict.detect_only = true;
  auto& entry = const_cast<StimulusEntry&>(dict.stimulus(0));
  entry.data = busy_input(12, 4);
  const std::string path = temp_path("dict_roundtrip.snfd");
  dict.save(path);

  FaultDictionary::LoadStats stats;
  auto loaded = FaultDictionary::load(path, &stats);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(stats.records_loaded, dict.num_records());
  EXPECT_EQ(stats.records_skipped, 0u);
  expect_dicts_equal(dict, *loaded);
  EXPECT_TRUE(loaded->stimulus(0).has_data());
  EXPECT_FALSE(loaded->stimulus(1).has_data());
  std::remove(path.c_str());
}

TEST(Dictionary, LoadMissingFileReturnsNullopt) {
  EXPECT_FALSE(FaultDictionary::load(temp_path("does_not_exist.snfd")).has_value());
}

TEST(Dictionary, TruncatedTailFailsSoftWithCountedSkips) {
  FaultDictionary dict = synthetic_dict(4, {{0}, {1}, {2}}, {5, 5, 5});
  const std::string path = temp_path("dict_truncated.snfd");
  dict.save(path);
  const std::string bytes = slurp(path);
  // Cut into the final record: its tail is gone, everything before survives.
  spit(path, bytes.substr(0, bytes.size() - 10));

  FaultDictionary::LoadStats stats;
  auto loaded = FaultDictionary::load(path, &stats);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_GE(stats.records_skipped, 1u);
  EXPECT_EQ(stats.records_loaded + stats.records_skipped, dict.num_records());
  EXPECT_EQ(loaded->num_records(), stats.records_loaded);
  EXPECT_TRUE(loaded->compatible_with(dict));
  std::remove(path.c_str());
}

TEST(Dictionary, FlippedCrcByteSkipsExactlyThatRecord) {
  FaultDictionary dict = synthetic_dict(4, {{0}, {1}, {2}}, {5, 5, 5});
  const std::string path = temp_path("dict_crcflip.snfd");
  dict.save(path);
  std::string bytes = slurp(path);
  // The file ends with the last record's CRC-32; flipping one bit there
  // invalidates exactly one record without touching the framing.
  bytes[bytes.size() - 1] ^= 0x01;
  spit(path, bytes);

  FaultDictionary::LoadStats stats;
  auto loaded = FaultDictionary::load(path, &stats);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(stats.records_skipped, 1u);
  EXPECT_EQ(stats.records_loaded, dict.num_records() - 1);
  EXPECT_EQ(loaded->num_records(), dict.num_records() - 1);
  std::remove(path.c_str());
}

TEST(Dictionary, CorruptHeaderOrMagicFailsLoad) {
  FaultDictionary dict = synthetic_dict(4, {{0}}, {5});
  const std::string path = temp_path("dict_header.snfd");
  dict.save(path);
  const std::string bytes = slurp(path);

  // Bad magic.
  std::string bad = bytes;
  bad[0] ^= 0xFF;
  spit(path, bad);
  EXPECT_FALSE(FaultDictionary::load(path).has_value());

  // A flipped byte inside the header blob (offset 20 = 8 magic/version +
  // 8 block length + 4) trips the header block's CRC.
  bad = bytes;
  bad[20] ^= 0xFF;
  spit(path, bad);
  EXPECT_FALSE(FaultDictionary::load(path).has_value());
  std::remove(path.c_str());
}

// --- merge -----------------------------------------------------------------

TEST(Dictionary, MergeOverlappingDictionaries) {
  // a: stim0 fully recorded, stim1 partially recorded (fault 2 missing).
  // b: stim1 (same fingerprint; one agreeing, one conflicting, one new
  // record) + stim2 (entirely new).
  FaultDictionary a = synthetic_dict(3, {{0}}, {5});
  a.add_stimulus(make_entry("stim1", 1001, 6));
  a.record(1, 0, make_result(false, 0.0, -1));
  a.record(1, 1, make_result(true, 3.0, 2));
  FaultDictionary b;
  b.model_fingerprint = a.model_fingerprint;
  b.universe_fingerprint = a.universe_fingerprint;
  b.num_faults = a.num_faults;
  b.add_stimulus(make_entry("stim1", 1001, 6));  // fingerprint matches a's stim1
  b.record(0, 0, make_result(false, 0.0, -1));   // agrees with a
  b.record(0, 1, make_result(true, 9.0, 7));     // conflicts with a's (true, 3.0, 2)
  b.record(0, 2, make_result(true, 1.0, 0));     // new pair for an existing stimulus
  b.add_stimulus(make_entry("stim2", 1002, 8));
  b.record(1, 2, make_result(true, 2.0, 1));

  const auto stats = a.merge(b);
  EXPECT_EQ(stats.stimuli_added, 1u);
  EXPECT_EQ(stats.records_added, 2u);
  EXPECT_EQ(stats.duplicates_agreeing, 1u);
  EXPECT_EQ(stats.conflicts_skipped, 1u);
  EXPECT_EQ(a.num_stimuli(), 3u);
  EXPECT_EQ(a.num_records(), 7u);  // 3 (stim0) + 2 (stim1) + 2 added
  // The conflict kept the existing record.
  EXPECT_EQ(a.lookup(1, 1)->output_l1, 3.0);
  // Merged pairs landed under the existing stimulus index.
  EXPECT_TRUE(a.lookup(1, 2)->detected);
  EXPECT_TRUE(a.lookup(2, 2)->detected);
}

TEST(Dictionary, MergeIncompatibleThrows) {
  FaultDictionary a = synthetic_dict(3, {{0}}, {5});
  FaultDictionary b = synthetic_dict(3, {{0}}, {5});
  b.model_fingerprint ^= 1;  // retrained model
  EXPECT_THROW(a.merge(b), std::invalid_argument);
  FaultDictionary c = synthetic_dict(4, {{0}}, {5});  // different universe size
  EXPECT_THROW(a.merge(c), std::invalid_argument);
}

// --- incremental campaigns -------------------------------------------------

TEST(Incremental, WarmRerunIsLookupOnlyAndBitIdenticalAcrossLaneWidths) {
  auto net = make_net();
  const auto faults = sampled_universe(net);
  const std::vector<tensor::Tensor> stimuli = {busy_input(20, 8, 5), busy_input(20, 8, 6),
                                               busy_input(20, 8, 7)};
  for (const size_t lane_width : {size_t{1}, size_t{4}, size_t{8}}) {
    campaign::EngineConfig engine;
    engine.num_threads = 2;
    engine.lane_width = lane_width;

    // Cold: plain engine runs (the ground truth) and a dictionary build.
    FaultDictionary dict = make_dictionary(net, faults);
    std::vector<std::vector<fault::DetectionResult>> cold;
    for (size_t i = 0; i < stimuli.size(); ++i) {
      cold.push_back(campaign::run_campaign(net, stimuli[i], faults, engine).results);
      IncrementalConfig config;
      config.engine = engine;
      auto out = run_incremental_campaign(net, stimuli[i], faults, dict, config);
      EXPECT_FALSE(out.coverage.dictionary_rejected);
      EXPECT_EQ(out.coverage.pairs_reused, 0u);
      EXPECT_EQ(out.coverage.pairs_recorded, faults.size());
      ASSERT_EQ(out.campaign.results.size(), cold[i].size());
      for (size_t j = 0; j < faults.size(); ++j) {
        EXPECT_TRUE(results_identical(cold[i][j], out.campaign.results[j]))
            << "lane_width " << lane_width << " stimulus " << i << " fault " << j;
      }
    }

    // Disk round trip, then warm re-runs: zero simulations, identical bits.
    const std::string path = temp_path("dict_warm.snfd");
    dict.save(path);
    auto reloaded = FaultDictionary::load(path);
    ASSERT_TRUE(reloaded.has_value());
    for (size_t i = 0; i < stimuli.size(); ++i) {
      IncrementalConfig config;
      config.engine = engine;
      const auto out = run_incremental_campaign(net, stimuli[i], faults, *reloaded, config);
      EXPECT_EQ(out.coverage.pairs_reused, faults.size());
      EXPECT_EQ(out.campaign.stats.pairs_reused, faults.size());
      EXPECT_EQ(out.campaign.stats.faults_simulated, 0u);
      EXPECT_EQ(out.coverage.pairs_recorded, 0u);
      EXPECT_TRUE(out.campaign.completed);
      for (size_t j = 0; j < faults.size(); ++j) {
        EXPECT_TRUE(results_identical(cold[i][j], out.campaign.results[j]))
            << "warm lane_width " << lane_width << " stimulus " << i << " fault " << j;
      }
    }
    std::remove(path.c_str());
  }
}

TEST(Incremental, RejectsDictionaryOfRetrainedModel) {
  auto net = make_net(11);
  auto retrained = make_net(99);  // same topology, different parameters
  const auto faults = sampled_universe(net);
  const auto input = busy_input();

  FaultDictionary dict = make_dictionary(net, faults);
  IncrementalConfig config;
  config.engine.num_threads = 1;
  run_incremental_campaign(net, input, faults, dict, config);
  const size_t records_before = dict.num_records();
  EXPECT_EQ(records_before, faults.size());

  // Same fault list, same settings — but the parameters changed, so the
  // model fingerprint differs and the dictionary must be rejected softly.
  const auto out = run_incremental_campaign(retrained, input, faults, dict, config);
  EXPECT_TRUE(out.coverage.dictionary_rejected);
  EXPECT_EQ(out.coverage.pairs_reused, 0u);
  EXPECT_EQ(dict.num_records(), records_before);  // untouched
  EXPECT_TRUE(out.campaign.completed);

  // The cold results are still correct (match a plain engine run).
  const auto plain = campaign::run_campaign(retrained, input, faults, config.engine);
  for (size_t j = 0; j < faults.size(); ++j) {
    EXPECT_TRUE(results_identical(plain.results[j], out.campaign.results[j])) << j;
  }
}

TEST(Incremental, DetectionSettingsChangeRejectsDictionary) {
  auto net = make_net();
  const auto faults = sampled_universe(net, 20);
  FaultDictionary dict = make_dictionary(net, faults, /*detection_threshold=*/0.0);
  IncrementalConfig config;
  config.engine.num_threads = 1;
  config.engine.detection_threshold = 2.0;  // differs from the dictionary's
  const auto out = run_incremental_campaign(net, busy_input(), faults, dict, config);
  EXPECT_TRUE(out.coverage.dictionary_rejected);
  EXPECT_EQ(dict.num_records(), 0u);
}

// --- minimum-time minimizer ------------------------------------------------

TEST(Minimize, TieBreaksRatioThenGainThenIndex) {
  // stim0 {f0}/10 and stim1 {f0,f1}/20 tie on ratio 0.1 — the larger gain
  // must win. stim2 {f2}/5 and stim3 {f3}/5 tie on ratio AND gain — the
  // smaller index must come first. Best ratios overall: stim2/stim3 (0.2).
  FaultDictionary dict = synthetic_dict(4, {{0}, {0, 1}, {2}, {3}}, {10, 20, 5, 5});
  const TestSchedule schedule = minimize_schedule(dict);
  ASSERT_EQ(schedule.steps.size(), 3u);
  EXPECT_EQ(schedule.steps[0].stimulus, 2u);
  EXPECT_EQ(schedule.steps[1].stimulus, 3u);
  EXPECT_EQ(schedule.steps[2].stimulus, 1u);  // gain 2 beats stim0's gain 1
  EXPECT_TRUE(schedule.complete());
  EXPECT_EQ(schedule.covered_faults, 4u);
  EXPECT_EQ(schedule.scheduled_frames, 30u);
  EXPECT_EQ(schedule.all_stimuli_frames, 40u);
  // Cumulative curve is monotone in both axes.
  for (size_t i = 1; i < schedule.steps.size(); ++i) {
    EXPECT_GT(schedule.steps[i].cumulative_detected, schedule.steps[i - 1].cumulative_detected);
    EXPECT_GT(schedule.steps[i].cumulative_frames, schedule.steps[i - 1].cumulative_frames);
  }
}

TEST(Minimize, ShadowedAndZeroDetectionStimuliNeverScheduled) {
  // Equal costs, so stim0's gain of 3 is picked first; stim1 detects
  // nothing and stim2's set is then fully shadowed by stim0.
  FaultDictionary dict = synthetic_dict(3, {{0, 1, 2}, {}, {1}}, {1, 1, 1});
  const TestSchedule schedule = minimize_schedule(dict);
  ASSERT_EQ(schedule.steps.size(), 1u);
  EXPECT_EQ(schedule.steps[0].stimulus, 0u);
  EXPECT_TRUE(schedule.complete());
  EXPECT_EQ(schedule.detectable_faults, 3u);
}

TEST(Minimize, DeterministicOnRealCampaignData) {
  auto net = make_net();
  const auto faults = sampled_universe(net);
  FaultDictionary dict = make_dictionary(net, faults);
  IncrementalConfig config;
  config.engine.num_threads = 2;
  for (uint64_t seed : {5, 6, 7, 8}) {
    config.stimulus_name = "s" + std::to_string(seed);
    run_incremental_campaign(net, busy_input(20, 8, seed), faults, dict, config);
  }
  const TestSchedule a = minimize_schedule(dict);
  const TestSchedule b = minimize_schedule(dict);
  ASSERT_EQ(a.steps.size(), b.steps.size());
  for (size_t i = 0; i < a.steps.size(); ++i) {
    EXPECT_EQ(a.steps[i].stimulus, b.steps[i].stimulus);
    EXPECT_EQ(a.steps[i].new_faults, b.steps[i].new_faults);
    EXPECT_EQ(a.steps[i].cumulative_frames, b.steps[i].cumulative_frames);
  }
  EXPECT_TRUE(a.complete());
  EXPECT_EQ(a.coverage_of_detectable(), 1.0);
  EXPECT_LE(a.scheduled_frames, a.all_stimuli_frames);
  for (const auto& step : a.steps) EXPECT_GT(step.new_faults, 0u);
}

TEST(Minimize, ScheduleAsDictionaryIsOrderedAndSelfContained) {
  FaultDictionary dict = synthetic_dict(4, {{0}, {0, 1}, {2}, {3}}, {10, 20, 5, 5});
  for (size_t s = 0; s < dict.num_stimuli(); ++s) {
    const_cast<StimulusEntry&>(dict.stimulus(s)).data = busy_input(8, 4, s);
  }
  const TestSchedule schedule = minimize_schedule(dict);
  const FaultDictionary sub = schedule_as_dictionary(dict, schedule);
  EXPECT_TRUE(sub.schedule_ordered);
  EXPECT_TRUE(sub.compatible_with(dict));
  ASSERT_EQ(sub.num_stimuli(), schedule.steps.size());
  for (size_t i = 0; i < schedule.steps.size(); ++i) {
    // File order IS execution order, stimuli keep their embedded data.
    EXPECT_EQ(sub.stimulus(i).fingerprint, dict.stimulus(schedule.steps[i].stimulus).fingerprint);
    EXPECT_TRUE(sub.stimulus(i).has_data());
  }
  // The sub-dictionary alone still certifies the same detectable coverage.
  EXPECT_EQ(sub.detectable_count(), schedule.covered_faults);
  // And it survives a disk round trip with the flag intact.
  const std::string path = temp_path("dict_schedule.snfd");
  sub.save(path);
  auto loaded = FaultDictionary::load(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_TRUE(loaded->schedule_ordered);
  expect_dicts_equal(sub, *loaded);
  std::remove(path.c_str());
}

// --- first_detection_frame semantics ---------------------------------------

TEST(FirstDetectionFrame, FrameIffDetectedAndWithinStimulus) {
  auto net = make_net();
  const auto input = busy_input();
  const auto faults = sampled_universe(net);
  campaign::EngineConfig engine;
  engine.num_threads = 2;
  const auto full = campaign::run_campaign(net, input, faults, engine);
  const auto T = static_cast<int64_t>(input.shape().dim(0));
  size_t detected = 0;
  for (const auto& r : full.results) {
    if (r.detected) {
      ++detected;
      EXPECT_GE(r.first_detection_frame, 0);
      EXPECT_LT(r.first_detection_frame, T);
    } else {
      EXPECT_EQ(r.first_detection_frame, -1);
    }
  }
  ASSERT_GT(detected, 0u) << "test needs at least one detected fault to be meaningful";

  // The detect-only path accumulates the same per-frame L1 mass, so it must
  // agree on the crossing frame (and on detected) for every fault.
  engine.detect_only = true;
  const auto fast = campaign::run_campaign(net, input, faults, engine);
  for (size_t j = 0; j < faults.size(); ++j) {
    EXPECT_EQ(full.results[j].detected, fast.results[j].detected) << j;
    EXPECT_EQ(full.results[j].first_detection_frame, fast.results[j].first_detection_frame) << j;
  }
}

// --- shard-merge fuzz ------------------------------------------------------
//
// The orchestrator's merge step consumes shard files written by worker
// processes that may have been SIGKILLed mid-write or corrupted on disk.
// The fuzz drives randomized overlapping / truncated / bit-flipped shard
// files through load+merge and pins the failure contract: loads either fail
// cleanly (nullopt) or account every written record as loaded XOR skipped,
// merges never crash, and no damaged or conflicting record is ever
// silently accepted into the merged matrix.

/// A shard dictionary holding records for faults [begin, end) of a shared
/// synthetic universe. The result of pair (0, f) is a fixed function of f,
/// so any two honest shards agree on every overlapping pair.
FaultDictionary synthetic_shard(size_t num_faults, size_t begin, size_t end, bool conflicting) {
  FaultDictionary shard;
  shard.model_fingerprint = 0xABCD;
  shard.universe_fingerprint = 0x1234;
  shard.num_faults = num_faults;
  shard.add_stimulus(make_entry("stim0", 777, 20));
  for (size_t f = begin; f < end; ++f) {
    const bool hit = f % 3 == 0;
    const double l1 = conflicting ? 99.0 : (hit ? 2.0 + static_cast<double>(f) : 0.0);
    shard.record(0, f, make_result(hit, l1, hit ? static_cast<int64_t>(f % 7) : -1));
  }
  return shard;
}

TEST(ShardMergeFuzz, DamagedShardFilesFailSoftAndAccountExactly) {
  util::Rng rng(20260809);
  const size_t num_faults = 24;
  size_t loads_failed = 0, records_skipped_total = 0;
  for (size_t trial = 0; trial < 60; ++trial) {
    FaultDictionary merged;
    merged.model_fingerprint = 0xABCD;
    merged.universe_fingerprint = 0x1234;
    merged.num_faults = num_faults;

    for (size_t k = 0; k < 3; ++k) {
      // Random, deliberately overlapping range of the shared universe.
      const size_t begin = static_cast<size_t>(rng.uniform_index(num_faults));
      const size_t end =
          begin + 1 + static_cast<size_t>(rng.uniform_index(num_faults - begin));
      const FaultDictionary shard = synthetic_shard(num_faults, begin, end, false);
      const size_t written = shard.num_records();
      const std::string path = temp_path("fuzz_shard.snfd");
      shard.save(path);

      // Byte offset where the per-record region begins (just past the u64
      // record count). Everything before it — magic, header, stimulus
      // table, count — is the file's identity; damage there may lose the
      // whole file or the count, so the exact per-record accounting
      // contract only binds for damage at or past this offset.
      const size_t records_at = synthetic_shard(num_faults, begin, begin, false).serialize().size();

      // Mutation: 0 = pristine, 1 = truncated tail (the kill-mid-write
      // artifact), 2 = one flipped byte anywhere in the file.
      std::string bytes = slurp(path);
      const uint64_t mutation = rng.uniform_index(3);
      size_t damage_at = bytes.size();  // pristine: "damaged" past the end
      if (mutation == 1) {
        damage_at = static_cast<size_t>(rng.uniform_index(bytes.size()));
        bytes.resize(damage_at);
        spit(path, bytes);
      } else if (mutation == 2) {
        damage_at = static_cast<size_t>(rng.uniform_index(bytes.size()));
        bytes[damage_at] = static_cast<char>(bytes[damage_at] ^ (1 << rng.uniform_index(8)));
        spit(path, bytes);
      }

      FaultDictionary::LoadStats stats;
      const auto loaded = FaultDictionary::load(path, &stats);
      std::remove(path.c_str());
      if (!loaded) {
        ++loads_failed;  // mangled magic/header/stimulus table: clean refusal
        continue;
      }
      if (damage_at >= records_at) {
        // Exact accounting: every record the shard wrote is either loaded
        // or counted skipped — nothing vanishes without a trace.
        EXPECT_EQ(stats.records_loaded + stats.records_skipped, written)
            << "trial " << trial << " shard " << k << " mutation " << mutation;
      }
      EXPECT_EQ(loaded->num_records(), stats.records_loaded);
      records_skipped_total += stats.records_skipped;

      ASSERT_TRUE(loaded->compatible_with(merged));
      const auto merge_stats = merged.merge(*loaded);
      // Honest shards agree on every overlapping pair, and a CRC-guarded
      // load admits no damaged record — so a conflict here would mean the
      // fuzz smuggled a corrupted result past the checksum.
      EXPECT_EQ(merge_stats.conflicts_skipped, 0u)
          << "trial " << trial << " shard " << k << " mutation " << mutation;
    }

    // Every surviving record must hold exactly the value its writer
    // recorded (no silent acceptance of mutated payloads).
    for (size_t f = 0; f < num_faults; ++f) {
      if (!merged.has(0, f)) continue;
      const bool hit = f % 3 == 0;
      const auto expected =
          make_result(hit, hit ? 2.0 + static_cast<double>(f) : 0.0,
                      hit ? static_cast<int64_t>(f % 7) : -1);
      EXPECT_TRUE(results_identical(*merged.lookup(0, f), expected)) << "fault " << f;
    }
  }
  // The mutation mix must actually exercise both failure paths: whole-file
  // refusals (header damage) and per-record skips (record damage).
  EXPECT_GT(loads_failed, 0u);
  EXPECT_GT(records_skipped_total, 0u);
}

TEST(ShardMergeFuzz, ConflictingShardIsSurfacedPerOverlappingPair) {
  const size_t num_faults = 12;
  FaultDictionary merged = synthetic_shard(num_faults, 0, 8, false);
  // A dishonest shard disagreeing on every overlapping pair (it reports
  // l1 = 99.0 everywhere): each of the 4 overlap pairs must be counted as
  // a conflict, kept-first, and never silently absorbed.
  const FaultDictionary liar = synthetic_shard(num_faults, 4, 12, true);
  const auto stats = merged.merge(liar);
  EXPECT_EQ(stats.conflicts_skipped, 4u);  // faults 4..7, the overlap
  EXPECT_EQ(stats.records_added, 4u);      // faults 8..11, the non-overlapping tail
  for (size_t f = 0; f < 8; ++f) {
    const bool hit = f % 3 == 0;
    EXPECT_EQ(merged.lookup(0, f)->output_l1, hit ? 2.0 + static_cast<double>(f) : 0.0)
        << "conflict did not keep the existing record for fault " << f;
  }
}

TEST(ShardMergeFuzz, SaveAtomicNeverExposesATornFile) {
  // save_atomic commits by rename: after any number of overwrites the file
  // on disk is always one complete, loadable dictionary with the newest
  // contents (the shard worker's partial-snapshot protocol relies on this).
  const std::string path = temp_path("atomic_roundtrip.snfd");
  for (size_t n = 1; n <= 5; ++n) {
    const FaultDictionary shard = synthetic_shard(20, 0, 4 * n, false);
    shard.save_atomic(path);
    FaultDictionary::LoadStats stats;
    const auto loaded = FaultDictionary::load(path, &stats);
    ASSERT_TRUE(loaded.has_value());
    EXPECT_EQ(stats.records_skipped, 0u);
    EXPECT_EQ(loaded->num_records(), 4 * n);
    expect_dicts_equal(shard, *loaded);
  }
  std::remove(path.c_str());
}

TEST(ShardMergeFuzz, SerializeMatchesSavedFileBytes) {
  const FaultDictionary shard = synthetic_shard(16, 2, 14, false);
  const std::string path = temp_path("serialize_bytes.snfd");
  shard.save(path);
  EXPECT_EQ(shard.serialize(), slurp(path));
  shard.save_atomic(path);
  EXPECT_EQ(shard.serialize(), slurp(path));
  std::remove(path.c_str());
}

// --- fault dropping and minimized-schedule replay ---------------------------

TEST(Incremental, DropMaskServesPlaceholdersCountsThemAndNeverRecords) {
  auto net = make_net();
  const auto faults = sampled_universe(net);
  const auto input = busy_input();
  campaign::EngineConfig engine;
  engine.num_threads = 2;
  const auto cold = campaign::run_campaign(net, input, faults, engine);

  std::vector<char> drop(faults.size(), 0);
  for (size_t j = 0; j < faults.size(); j += 3) drop[j] = 1;
  size_t drop_count = 0;
  for (char d : drop) drop_count += d != 0;

  FaultDictionary dict = make_dictionary(net, faults);
  IncrementalConfig config;
  config.engine = engine;
  config.drop_faults = &drop;
  const auto out = run_incremental_campaign(net, input, faults, dict, config);
  EXPECT_EQ(out.coverage.pairs_dropped, drop_count);
  // Drops are served through the result-cache hook, so the engine counts
  // them as reused pairs.
  EXPECT_EQ(out.campaign.stats.pairs_reused, drop_count);
  EXPECT_EQ(out.campaign.stats.faults_simulated, faults.size() - drop_count);
  EXPECT_EQ(out.coverage.pairs_recorded, faults.size() - drop_count);
  for (size_t j = 0; j < faults.size(); ++j) {
    if (drop[j]) {
      // Placeholder result, never recorded into the dictionary.
      EXPECT_TRUE(results_identical(out.campaign.results[j], fault::DetectionResult{})) << j;
      EXPECT_FALSE(dict.has(0, j)) << j;
    } else {
      EXPECT_TRUE(results_identical(cold.results[j], out.campaign.results[j])) << j;
      EXPECT_TRUE(dict.has(0, j)) << j;
    }
  }

  // A stored dictionary result wins over dropping: re-running warm with an
  // all-ones drop mask still serves the real recorded results.
  std::vector<char> drop_all(faults.size(), 1);
  config.drop_faults = &drop_all;
  const auto warm = run_incremental_campaign(net, input, faults, dict, config);
  EXPECT_EQ(warm.coverage.pairs_dropped, drop_count);  // only the unrecorded pairs drop
  EXPECT_EQ(warm.coverage.pairs_reused, faults.size());
  for (size_t j = 0; j < faults.size(); ++j) {
    if (!drop[j]) {
      EXPECT_TRUE(results_identical(cold.results[j], warm.campaign.results[j])) << j;
    }
  }
}

TEST(Replay, ScheduleReplayAccumulatesCoverageWithMonotoneShrinkingWork) {
  auto net = make_net();
  const auto faults = sampled_universe(net);
  campaign::EngineConfig engine;
  engine.num_threads = 2;

  // Build a recorded dictionary over four stimuli (with embedded data),
  // minimize it, and export the schedule-ordered sub-dictionary.
  FaultDictionary dict = make_dictionary(net, faults);
  IncrementalConfig config;
  config.engine = engine;
  for (uint64_t seed : {5, 6, 7, 8}) {
    config.stimulus_name = "s" + std::to_string(seed);
    run_incremental_campaign(net, busy_input(20, 8, seed), faults, dict, config);
  }
  const TestSchedule schedule = minimize_schedule(dict);
  ASSERT_GE(schedule.steps.size(), 2u) << "test needs a multi-step schedule to be meaningful";
  const FaultDictionary sub = schedule_as_dictionary(dict, schedule);

  ScheduleReplayConfig replay_config;
  replay_config.engine = engine;
  const ScheduleReplayResult replay = replay_schedule(net, sub, faults, replay_config);

  // The replay certifies exactly the coverage the minimizer promised.
  EXPECT_EQ(replay.total_detected, schedule.covered_faults);
  EXPECT_EQ(replay.total_frames, schedule.scheduled_frames);
  ASSERT_EQ(replay.steps.size(), schedule.steps.size());
  size_t prev_cumulative = 0;
  for (size_t i = 0; i < replay.steps.size(); ++i) {
    const auto& step = replay.steps[i];
    EXPECT_EQ(step.stimulus, i);  // schedule dictionaries replay in file order
    EXPECT_EQ(step.newly_detected, schedule.steps[i].new_faults) << i;
    EXPECT_EQ(step.cumulative_detected, schedule.steps[i].cumulative_detected) << i;
    EXPECT_EQ(step.cumulative_frames, schedule.steps[i].cumulative_frames) << i;
    // The minimum-time shortcut: each step drops exactly the faults all
    // earlier steps detected, so simulated work shrinks as coverage grows.
    EXPECT_EQ(step.faults_dropped, prev_cumulative) << i;
    EXPECT_EQ(step.faults_simulated, faults.size() - prev_cumulative) << i;
    prev_cumulative = step.cumulative_detected;
  }
  // The detected mask matches the dictionary's ground truth.
  const std::vector<char> truth = sub.detectable_mask();
  ASSERT_EQ(replay.detected.size(), truth.size());
  for (size_t j = 0; j < truth.size(); ++j) {
    EXPECT_EQ(replay.detected[j] != 0, truth[j] != 0) << j;
  }

  // The frontier engine composes with replay: identical coverage decisions.
  replay_config.engine.frontier = true;
  const ScheduleReplayResult frontier = replay_schedule(net, sub, faults, replay_config);
  EXPECT_EQ(frontier.total_detected, replay.total_detected);
  ASSERT_EQ(frontier.detected.size(), replay.detected.size());
  for (size_t j = 0; j < replay.detected.size(); ++j) {
    EXPECT_EQ(frontier.detected[j], replay.detected[j]) << j;
  }
}

TEST(Replay, MismatchedOrDataFreeScheduleThrows) {
  auto net = make_net();
  const auto faults = sampled_universe(net, 20);
  FaultDictionary dict = make_dictionary(net, faults);
  IncrementalConfig config;
  config.engine.num_threads = 1;
  run_incremental_campaign(net, busy_input(), faults, dict, config);

  // Detection settings differ from the schedule dictionary's.
  ScheduleReplayConfig replay_config;
  replay_config.engine.num_threads = 1;
  replay_config.engine.detection_threshold = 2.0;
  EXPECT_THROW(replay_schedule(net, dict, faults, replay_config), std::invalid_argument);

  // A stimulus without embedded data cannot be replayed.
  replay_config.engine.detection_threshold = 0.0;
  const_cast<StimulusEntry&>(dict.stimulus(0)).data = tensor::Tensor();
  EXPECT_THROW(replay_schedule(net, dict, faults, replay_config), std::invalid_argument);
}

}  // namespace
}  // namespace snntest::coverage
